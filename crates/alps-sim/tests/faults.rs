//! Deterministic fault injection against the hardened engine.
//!
//! These tests drive `alps_core::Engine` under `FaultPolicy::Harden` over
//! a [`FaultySubstrate`] wrapping a deterministic in-memory substrate,
//! with every fault class enabled: lost and delayed signals, failed and
//! stale reads, mid-quantum exits, and tick jitter. The supervisor must
//! survive all of it without panicking, the recovery machinery must leave
//! visible fingerprints in `EngineStats`, and the whole run must replay
//! exactly from its seeds.

use std::collections::BTreeMap;

use alps_core::{
    AlpsConfig, Engine, EngineStats, FaultPolicy, HardenConfig, Instrumentation, Nanos, NullSink,
    Observation, Signal, Substrate,
};
use alps_sim::fault::{Faulty, FaultySubstrate};
use kernsim::{FaultPlan, FaultRates};

const Q: Nanos = Nanos(10_000_000);

/// A scripted substrate whose deliveries can also fail with a real error,
/// so the wrapper's `Faulty::Inner` path and the engine's retry/quarantine
/// machinery get exercised too.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Mock {
    now: Nanos,
    procs: BTreeMap<u32, (Nanos, bool)>, // cpu, gone
    /// Every `fail_every`-th delivery errors (0 = never).
    fail_every: u64,
    deliveries: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DeliverErr;

impl Substrate for Mock {
    type Member = u32;
    type Error = DeliverErr;

    fn now(&mut self) -> Nanos {
        self.now
    }

    fn read(&mut self, m: u32) -> Result<Option<Observation>, DeliverErr> {
        Ok(self.procs.get(&m).and_then(|&(cpu, gone)| {
            (!gone).then_some(Observation {
                total_cpu: cpu,
                blocked: false,
            })
        }))
    }

    fn deliver(&mut self, m: u32, _signal: Signal) -> Result<bool, DeliverErr> {
        self.deliveries += 1;
        if self.fail_every != 0 && self.deliveries.is_multiple_of(self.fail_every) {
            return Err(DeliverErr);
        }
        Ok(self.procs.get(&m).is_some_and(|&(_, gone)| !gone))
    }
}

struct Run {
    stats: EngineStats,
    log: kernsim::FaultLog,
    live: usize,
}

/// Drive `quanta` quanta of a 6-member workload through a hardened engine
/// over a faulty substrate. Mid-quantum exits come from a second plan
/// (the harness plays the kernel), everything else from the wrapper.
fn drive(rates: FaultRates, seed: u64, quanta: u64, fail_every: u64) -> Run {
    let cfg = AlpsConfig::default().with_quantum(Q);
    let mut engine: Engine<u32> = Engine::new(cfg, Instrumentation::Measured)
        .with_auto_reap(true)
        .with_fault_policy(FaultPolicy::Harden(HardenConfig {
            max_strikes: 3,
            reassert_every: 8,
        }));
    let mut procs = BTreeMap::new();
    for pid in 0..6u32 {
        procs.insert(pid, (Nanos::ZERO, false));
    }
    let mut sub = FaultySubstrate::new(
        Mock {
            now: Nanos::ZERO,
            procs,
            fail_every,
            deliveries: 0,
        },
        FaultPlan::seeded(seed, rates),
    );
    let mut exits = FaultPlan::seeded(seed ^ 0x5EED, rates);
    let ids: Vec<_> = (0..6u32)
        .map(|pid| engine.add_member(pid, u64::from(pid % 3) + 1, Nanos::ZERO))
        .collect();
    let mut sink = NullSink;

    for _ in 0..quanta {
        {
            let mock = sub.inner_mut();
            mock.now = mock.now.saturating_add(Q);
            for (_, (cpu, gone)) in mock.procs.iter_mut() {
                if !*gone {
                    *cpu = cpu.saturating_add(Nanos(Q.0 / 2));
                }
            }
        }
        engine
            .begin_quantum(&mut sub, &mut sink)
            .expect("hardened begin must not propagate");
        // Mid-quantum exit: the "kernel" (this harness) kills a process
        // between the due scan and the reads, per the exit plan.
        if exits.exit_mid_quantum() {
            let mock = sub.inner_mut();
            if let Some((_, (cpu, gone))) = mock.procs.iter_mut().find(|(_, (_, g))| !*g) {
                let _ = cpu;
                *gone = true;
            }
        }
        engine
            .complete_quantum(&mut sub, &mut sink)
            .expect("hardened complete must not propagate");
        engine
            .apply_pending_signals(&mut sub, &mut sink)
            .expect("hardened apply must not propagate");
    }

    let live = ids.iter().filter(|&&id| engine.share(id).is_some()).count();
    Run {
        stats: engine.stats(),
        log: *sub.plan().log(),
        live,
    }
}

#[test]
fn hardened_engine_survives_every_fault_class_at_once() {
    let run = drive(FaultRates::chaotic(), 42, 600, 7);
    // Every class actually fired...
    assert!(run.log.lost_signals > 0, "no lost signals: {:?}", run.log);
    assert!(
        run.log.delayed_signals > 0,
        "no delayed signals: {:?}",
        run.log
    );
    assert!(run.log.failed_reads > 0, "no failed reads: {:?}", run.log);
    assert!(run.log.stale_reads > 0, "no stale reads: {:?}", run.log);
    assert!(run.log.jittered_ticks > 0, "no jitter: {:?}", run.log);
    // ...the loop never died...
    assert_eq!(run.stats.quanta, 600);
    // ...and recovery left its fingerprints in the stats.
    assert!(run.stats.read_faults > 0, "stats: {:?}", run.stats);
    assert!(run.stats.signal_faults > 0, "stats: {:?}", run.stats);
    assert!(run.stats.retries > 0, "stats: {:?}", run.stats);
    assert!(run.stats.reasserted > 0, "stats: {:?}", run.stats);
}

#[test]
fn each_fault_class_alone_is_survivable() {
    let one = |f: fn(&mut FaultRates)| {
        let mut r = FaultRates::none();
        f(&mut r);
        r
    };
    let classes: Vec<(&str, FaultRates)> = vec![
        ("lose_signal", one(|r| r.lose_signal = 0.3)),
        ("delay_signal", one(|r| r.delay_signal = 0.3)),
        ("fail_read", one(|r| r.fail_read = 0.2)),
        ("stale_read", one(|r| r.stale_read = 0.4)),
        ("exit_mid_quantum", one(|r| r.exit_mid_quantum = 0.05)),
        (
            "tick_jitter",
            one(|r| {
                r.tick_jitter = 0.5;
                r.max_jitter = Nanos::from_millis(25);
            }),
        ),
    ];
    for (name, rates) in classes {
        let run = drive(rates, 7, 300, 0);
        assert_eq!(run.stats.quanta, 300, "{name}: loop died");
        if name == "exit_mid_quantum" {
            assert!(run.live < 6, "{name}: nothing exited");
            assert!(run.stats.reaped > 0, "{name}: exits not reaped");
        }
    }
}

#[test]
fn persistent_delivery_failure_quarantines_the_member() {
    // Every delivery errors: each signaled member strikes out quickly and
    // must be quarantined rather than wedging the loop forever.
    let run = drive(FaultRates::none(), 3, 400, 1);
    assert_eq!(run.stats.quanta, 400);
    assert!(run.stats.signal_faults > 0);
    assert!(run.stats.quarantined > 0, "stats: {:?}", run.stats);
    assert!(run.live < 6, "no member was ever quarantined out");
}

#[test]
fn faulty_runs_replay_exactly_from_their_seed() {
    let a = drive(FaultRates::chaotic(), 99, 500, 7);
    let b = drive(FaultRates::chaotic(), 99, 500, 7);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.log, b.log);
    assert_eq!(a.live, b.live);
    let c = drive(FaultRates::chaotic(), 100, 500, 7);
    assert!(
        a.stats != c.stats || a.log != c.log,
        "different seeds produced identical runs"
    );
}

#[test]
fn fault_free_wrapper_is_transparent() {
    // With zero rates the wrapper must change nothing: the same schedule
    // over the bare mock and over the wrapped mock gives identical stats.
    let cfg = AlpsConfig::default().with_quantum(Q);
    let build = || {
        let mut procs = BTreeMap::new();
        for pid in 0..4u32 {
            procs.insert(pid, (Nanos::ZERO, false));
        }
        Mock {
            now: Nanos::ZERO,
            procs,
            fail_every: 0,
            deliveries: 0,
        }
    };
    let drive_bare = |mut engine: Engine<u32>, mut sub: Mock| {
        for pid in 0..4u32 {
            engine.add_member(pid, 1 + u64::from(pid), Nanos::ZERO);
        }
        for _ in 0..200 {
            sub.now = sub.now.saturating_add(Q);
            for (_, (cpu, _)) in sub.procs.iter_mut() {
                *cpu = cpu.saturating_add(Nanos(Q.0 / 3));
            }
            engine.run_quantum(&mut sub, &mut NullSink).unwrap();
        }
        (engine.stats(), sub)
    };
    let drive_wrapped = |mut engine: Engine<u32>, sub: Mock| {
        let mut sub = FaultySubstrate::new(sub, FaultPlan::seeded(5, FaultRates::none()));
        for pid in 0..4u32 {
            engine.add_member(pid, 1 + u64::from(pid), Nanos::ZERO);
        }
        for _ in 0..200 {
            let mock = sub.inner_mut();
            mock.now = mock.now.saturating_add(Q);
            for (_, (cpu, _)) in mock.procs.iter_mut() {
                *cpu = cpu.saturating_add(Nanos(Q.0 / 3));
            }
            engine.run_quantum(&mut sub, &mut NullSink).unwrap();
        }
        assert_eq!(sub.plan().log().total(), 0);
        (engine.stats(), sub.inner().clone())
    };
    let (s1, m1) = drive_bare(Engine::new(cfg, Instrumentation::Measured), build());
    let (s2, m2) = drive_wrapped(Engine::new(cfg, Instrumentation::Measured), build());
    assert_eq!(s1, s2);
    assert_eq!(m1, m2);
}

#[test]
fn injected_read_failure_is_distinguishable_from_inner_error() {
    let mut sub = FaultySubstrate::new(
        Mock {
            now: Nanos::ZERO,
            procs: BTreeMap::new(),
            fail_every: 1,
            deliveries: 0,
        },
        FaultPlan::seeded(
            1,
            FaultRates {
                fail_read: 1.0,
                ..FaultRates::none()
            },
        ),
    );
    assert_eq!(sub.read(0), Err(Faulty::Injected));
    assert_eq!(sub.deliver(0, Signal::Stop), Err(Faulty::Inner(DeliverErr)));
}
