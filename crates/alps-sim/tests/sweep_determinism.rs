//! Parallel-vs-serial determinism for the experiment drivers: every
//! multi-run path goes through `alps_sweep`, and the sweep executor's
//! contract is that thread count and seed order are invisible in the
//! results — parallelism may only change the wall clock.

use alps_core::Nanos;
use alps_sim::experiments::scalability::{run_scalability, ScalabilityParams};
use alps_sim::experiments::slo::{run_slo_sweep, SloParams};
use alps_sim::experiments::workload::{run_workload_mean, WorkloadParams, WorkloadRun};
use std::sync::Mutex;
use workloads::{Arrivals, ShareModel};

/// Serializes the tests that flip the process-wide thread override.
static THREADS_KNOB: Mutex<()> = Mutex::new(());

fn quick_params() -> WorkloadParams {
    let mut p = WorkloadParams::new(ShareModel::Linear, 5, Nanos::from_millis(20));
    p.target_cycles = 25;
    p
}

fn assert_runs_identical(a: &WorkloadRun, b: &WorkloadRun) {
    assert_eq!(a.workload, b.workload);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.duration, b.duration);
    assert_eq!(a.alps_cpu, b.alps_cpu);
    assert_eq!(a.quanta_serviced, b.quanta_serviced);
    assert_eq!(a.measurements, b.measurements);
    assert_eq!(a.signals, b.signals);
    // Bit-exact: the reductions must not depend on scheduling.
    assert_eq!(
        a.mean_rms_error_pct.to_bits(),
        b.mean_rms_error_pct.to_bits()
    );
    assert_eq!(a.overhead_pct.to_bits(), b.overhead_pct.to_bits());
}

#[test]
fn workload_mean_is_invariant_to_seed_order() {
    let p = quick_params();
    let fwd = run_workload_mean(&p, &[1, 2, 3]);
    let rev = run_workload_mean(&p, &[3, 1, 2]);
    assert_runs_identical(&fwd, &rev);
}

#[test]
fn workload_mean_is_invariant_to_thread_count() {
    let _g = THREADS_KNOB.lock().unwrap();
    let p = quick_params();
    alps_sweep::set_threads(Some(1));
    let serial = run_workload_mean(&p, &[1, 2, 3]);
    alps_sweep::set_threads(Some(8));
    let parallel = run_workload_mean(&p, &[1, 2, 3]);
    alps_sweep::set_threads(None);
    assert_runs_identical(&serial, &parallel);
}

/// A small SLO scenario: short run, controller active the whole time.
fn slo_quick() -> SloParams {
    SloParams {
        duration: Nanos::from_secs(8),
        settle: Nanos::from_secs(3),
        ..SloParams::default()
    }
}

/// Per-seed JSON fingerprints of an SLO sweep — every field of every
/// tenant outcome, bit-for-bit (serde renders f64 exactly).
fn slo_fingerprints(p: &SloParams, seeds: &[u64]) -> Vec<String> {
    run_slo_sweep(p, seeds)
        .into_iter()
        .map(|(s, r)| format!("{s}:{}", serde_json::to_string(&r).unwrap()))
        .collect()
}

#[test]
fn slo_sweep_is_invariant_to_thread_count_and_seed_order() {
    let _g = THREADS_KNOB.lock().unwrap();
    let p = slo_quick();
    alps_sweep::set_threads(Some(1));
    let serial = slo_fingerprints(&p, &[1, 2, 3]);
    alps_sweep::set_threads(Some(4));
    let parallel = slo_fingerprints(&p, &[1, 2, 3]);
    let mut reversed = slo_fingerprints(&p, &[3, 2, 1]);
    alps_sweep::set_threads(None);
    assert_eq!(serial, parallel, "thread count must be invisible");
    reversed.reverse();
    assert_eq!(serial, reversed, "seed order must be invisible");
}

#[test]
fn arrival_traces_fingerprint_is_stable() {
    // The offered traffic of the default SLO scenario is a pure function
    // of the spec: the first 64 arrival gaps of each tenant, xor-folded.
    // If this fingerprint moves, every latency table in EXPERIMENTS.md
    // silently changes meaning — bump them together, deliberately.
    let p = SloParams::default();
    let fp: u64 = p
        .tenants
        .iter()
        .enumerate()
        .flat_map(|(i, t)| {
            let seed = p.seed.wrapping_mul(31).wrapping_add(i as u64);
            t.arrivals.trace(seed, 64)
        })
        .fold(0u64, |acc, t| acc.rotate_left(7) ^ t.as_nanos());
    assert_eq!(fp, 0xe01a_f635_91b3_a1c9, "arrival fingerprint drifted");
    // And a different scenario seed produces a different trace.
    let alt = Arrivals::Poisson {
        mean_interarrival: Nanos::from_millis(8),
    };
    assert_ne!(alt.trace(1, 64), alt.trace(2, 64));
}

#[test]
fn scalability_sweep_is_invariant_to_thread_count() {
    let _g = THREADS_KNOB.lock().unwrap();
    let mut p = ScalabilityParams::paper(Nanos::from_millis(10));
    p.ns = vec![5, 10, 15];
    p.duration = Nanos::from_secs(20);
    alps_sweep::set_threads(Some(1));
    let serial = run_scalability(&p);
    alps_sweep::set_threads(Some(8));
    let parallel = run_scalability(&p);
    alps_sweep::set_threads(None);
    assert_eq!(serial.points.len(), parallel.points.len());
    for (a, b) in serial.points.iter().zip(&parallel.points) {
        assert_eq!(a.n, b.n);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.overhead_pct.to_bits(), b.overhead_pct.to_bits());
        assert_eq!(
            a.mean_rms_error_pct.to_bits(),
            b.mean_rms_error_pct.to_bits()
        );
        assert_eq!(
            a.quanta_serviced_frac.to_bits(),
            b.quanta_serviced_frac.to_bits()
        );
    }
}
