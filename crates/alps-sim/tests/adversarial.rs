//! Adversarial workloads: processes that try to game ALPS's sampling.
//!
//! ALPS only *samples* progress, and its measurement schedule is
//! predictable (§2.3: a process with allowance `a` is next measured
//! `⌈a⌉` quanta after its last measurement). These tests check that the
//! allowance accounting still bounds every adversary's long-run share —
//! the worst an attacker achieves is shifting *when* within a cycle it
//! runs, not *how much*.

use alps_core::{AlpsConfig, Nanos};
use alps_sim::{spawn_alps, CostModel};
use kernsim::{Behavior, ComputeBound, Sim, SimConfig, SimCtl, Step};

/// Runs in short bursts with micro-sleeps in between, hoping to look
/// blocked whenever ALPS samples it — and meanwhile to slip consumption
/// past the sampler.
struct BurstySneak {
    burst: Nanos,
    nap: Nanos,
    computing: bool,
}

impl Behavior for BurstySneak {
    fn on_ready(&mut self, _ctl: &mut SimCtl<'_>) -> Step {
        self.computing = !self.computing;
        if self.computing {
            Step::Compute(self.burst)
        } else {
            Step::Sleep(self.nap)
        }
    }
}

/// Sleeps exactly across each quantum boundary (where measurements
/// happen) and burns CPU in between.
struct BoundaryDodger {
    quantum: Nanos,
    phase: u8,
}

impl Behavior for BoundaryDodger {
    fn on_ready(&mut self, ctl: &mut SimCtl<'_>) -> Step {
        self.phase = self.phase.wrapping_add(1);
        let q = self.quantum.as_nanos();
        let now = ctl.now().as_nanos();
        let to_boundary = q - (now % q);
        if self.phase % 2 == 1 {
            // Compute up to just before the next boundary.
            let d = to_boundary.saturating_sub(200_000).max(1);
            Step::Compute(Nanos(d))
        } else {
            // Hide (blocked) across the boundary itself.
            Step::Sleep(Nanos(400_000))
        }
    }
}

fn shares_of(consumed: &[f64]) -> Vec<f64> {
    let total: f64 = consumed.iter().sum();
    consumed.iter().map(|c| c / total.max(1e-9)).collect()
}

#[test]
fn bursty_sneak_cannot_exceed_its_share() {
    let mut sim = Sim::new(SimConfig::default());
    let honest = sim.spawn("honest", Box::new(ComputeBound));
    let sneak = sim.spawn(
        "sneak",
        Box::new(BurstySneak {
            burst: Nanos::from_millis(3),
            nap: Nanos::from_micros(300),
            computing: false,
        }),
    );
    let cfg = AlpsConfig::new(Nanos::from_millis(10)).with_cycle_log(true);
    spawn_alps(
        &mut sim,
        "alps",
        cfg,
        CostModel::paper(),
        &[(honest, 1), (sneak, 1)],
    );
    sim.run_until(Nanos::from_secs(40));
    let fr = shares_of(&[
        sim.proc(honest).unwrap().cputime().as_f64(),
        sim.proc(sneak).unwrap().cputime().as_f64(),
    ]);
    // Equal shares: the sneak must not beat the honest spinner by more
    // than quantization noise — and being naturally idle part of the time,
    // plus eating blocked-penalties when caught napping, it lands at or
    // below 50%.
    assert!(
        fr[1] <= 0.54,
        "sneak got {:.3} of the CPU against an equal-share spinner",
        fr[1]
    );
}

#[test]
fn boundary_dodger_gains_nothing_durable() {
    let mut sim = Sim::new(SimConfig::default());
    let honest = sim.spawn("honest", Box::new(ComputeBound));
    let dodger = sim.spawn(
        "dodger",
        Box::new(BoundaryDodger {
            quantum: Nanos::from_millis(10),
            phase: 0,
        }),
    );
    let cfg = AlpsConfig::new(Nanos::from_millis(10)).with_cycle_log(true);
    spawn_alps(
        &mut sim,
        "alps",
        cfg,
        CostModel::paper(),
        &[(honest, 3), (dodger, 1)],
    );
    sim.run_until(Nanos::from_secs(40));
    let fr = shares_of(&[
        sim.proc(honest).unwrap().cputime().as_f64(),
        sim.proc(dodger).unwrap().cputime().as_f64(),
    ]);
    // Target 3:1 = 0.25 for the dodger. Consumption is integrated, not
    // sampled: hiding at measurement instants cannot erase consumed time,
    // and every observed nap costs a one-quantum penalty.
    assert!(fr[1] <= 0.29, "dodger got {:.3}, target 0.25", fr[1]);
}

#[test]
fn adversaries_cannot_starve_the_honest_process() {
    // Five adversaries of both kinds against one honest spinner, all with
    // equal shares: the spinner still gets roughly its sixth.
    let mut sim = Sim::new(SimConfig::default());
    let honest = sim.spawn("honest", Box::new(ComputeBound));
    let mut procs = vec![(honest, 1u64)];
    for i in 0..3 {
        let p = sim.spawn(
            format!("sneak{i}"),
            Box::new(BurstySneak {
                burst: Nanos::from_millis(2 + i),
                nap: Nanos::from_micros(200 + 100 * i),
                computing: false,
            }),
        );
        procs.push((p, 1));
    }
    for i in 0..2 {
        let p = sim.spawn(
            format!("dodger{i}"),
            Box::new(BoundaryDodger {
                quantum: Nanos::from_millis(10),
                phase: i,
            }),
        );
        procs.push((p, 1));
    }
    let cfg = AlpsConfig::new(Nanos::from_millis(10));
    spawn_alps(&mut sim, "alps", cfg, CostModel::paper(), &procs);
    sim.run_until(Nanos::from_secs(60));
    let consumed: Vec<f64> = procs
        .iter()
        .map(|&(p, _)| sim.proc(p).unwrap().cputime().as_f64())
        .collect();
    let fr = shares_of(&consumed);
    assert!(
        fr[0] >= 1.0 / 6.0 - 0.02,
        "honest process squeezed to {:.3} (fair: 0.167)",
        fr[0]
    );
}
