//! Command execution: wire the parsed CLI onto the `alps-os` supervisors.

use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use alps_core::{AlpsConfig, Nanos, TraceSink};
use alps_os::{ActuatorMode, Membership, PrincipalSupervisor, Supervisor};

use crate::args::{Cmd, Opts, ShareSpec, USAGE};

static INTERRUPTED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: libc::c_int) {
    INTERRUPTED.store(true, Ordering::SeqCst);
}

/// Install SIGINT/SIGTERM handlers so a Ctrl-C unwinds through the
/// supervisors' `Drop` (which SIGCONTs every controlled process) instead
/// of leaving children frozen.
fn install_signal_handlers() {
    // SAFETY: on_signal only touches an atomic; signal(2) with a valid
    // handler pointer has no other preconditions.
    let handler = on_signal as extern "C" fn(libc::c_int) as usize as libc::sighandler_t;
    unsafe {
        libc::signal(libc::SIGINT, handler);
        libc::signal(libc::SIGTERM, handler);
    }
}

fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::SeqCst)
}

/// Run a parsed command.
pub fn execute(cmd: Cmd) -> Result<(), Box<dyn std::error::Error>> {
    match cmd {
        Cmd::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Cmd::Probe => probe(),
        Cmd::Run(opts) => run_commands(opts),
        Cmd::Attach(opts) => attach_pids(opts),
        Cmd::User(opts) => supervise_users(opts),
    }
}

fn probe() -> Result<(), Box<dyn std::error::Error>> {
    let p = alps_os::probe_table1(500)?;
    println!("ALPS primary operation costs on this machine (paper values in parens):");
    println!(
        "  receive a timer event : {:8.2} us   (9.02)",
        p.timer_event_us
    );
    println!(
        "  measure CPU of n procs: {:8.2} + {:.2}*n us   (1.1 + 17.4*n)",
        p.measure_base_us, p.measure_per_proc_us
    );
    println!("  signal a process      : {:8.2} us   (0.97)", p.signal_us);
    Ok(())
}

fn config(opts: &Opts) -> AlpsConfig {
    AlpsConfig::new(Nanos::from_millis(opts.quantum_ms))
        .with_cycle_log(opts.verbose)
        .with_cpus(std::num::NonZeroUsize::new(opts.cpus).expect("parser rejects zero"))
}

fn deadline(opts: &Opts) -> Option<std::time::Instant> {
    opts.duration_s
        .map(|s| std::time::Instant::now() + Duration::from_secs(s))
}

fn should_stop(deadline: Option<std::time::Instant>) -> bool {
    interrupted() || deadline.is_some_and(|d| std::time::Instant::now() >= d)
}

/// Build the supervisor for the requested actuator, with a pointed error
/// when the host cannot offer cgroup actuation.
fn supervisor(opts: &Opts) -> Result<Supervisor, Box<dyn std::error::Error>> {
    let sup = Supervisor::with_actuator(config(opts), opts.actuator)
        .map_err(|e| format!("cannot actuate via {}: {e}", opts.actuator))?;
    if opts.actuator != ActuatorMode::Signals {
        eprintln!(
            "alps: actuating via cgroup {} ({})",
            opts.actuator,
            if sup.event_driven() {
                "pidfd exit notification"
            } else {
                "clock polling"
            }
        );
    }
    Ok(sup)
}

fn run_commands(opts: Opts) -> Result<(), Box<dyn std::error::Error>> {
    install_signal_handlers();
    // Build the supervisor before spawning anything: an unavailable
    // actuator (e.g. no delegated cgroup subtree) must fail with zero
    // commands left behind.
    let mut sup = supervisor(&opts)?;
    let mut children: Vec<Child> = Vec::new();
    let mut enroll = || -> Result<(), Box<dyn std::error::Error>> {
        for ShareSpec { target, share } in &opts.specs {
            let child = Command::new("/bin/sh")
                .arg("-c")
                .arg(target)
                .stdin(Stdio::null())
                .spawn()?;
            let pid = child.id() as i32;
            children.push(child);
            sup.add_process(pid, *share)?;
            eprintln!("alps: pid {pid} <- {share} share(s): {target}");
        }
        Ok(())
    };
    if let Err(e) = enroll() {
        // A mid-list spawn or enrollment failure must not leave the
        // earlier commands running unmanaged (possibly suspended).
        for child in &mut children {
            let _ = alps_os::signal::sigcont(child.id() as i32);
            let _ = child.kill();
            let _ = child.wait();
        }
        return Err(e);
    }
    let result = drive(&mut sup, &opts);
    sup.release_all();
    drop(sup);
    // Children are the user's commands: leave them running on exit unless
    // we spawned them for a bounded run.
    if opts.duration_s.is_some() || interrupted() {
        for child in &mut children {
            let _ = alps_os::signal::sigcont(child.id() as i32);
            let _ = child.kill();
            let _ = child.wait();
        }
    }
    result
}

fn attach_pids(opts: Opts) -> Result<(), Box<dyn std::error::Error>> {
    install_signal_handlers();
    let mut sup = supervisor(&opts)?;
    for spec in &opts.specs {
        let pid: i32 = spec
            .target
            .parse()
            .map_err(|_| format!("bad pid {:?}", spec.target))?;
        sup.add_process(pid, spec.share)?;
        eprintln!("alps: attached pid {pid} with {} share(s)", spec.share);
    }
    let result = drive(&mut sup, &opts);
    sup.release_all();
    result
}

fn drive(sup: &mut Supervisor, opts: &Opts) -> Result<(), Box<dyn std::error::Error>> {
    let end = deadline(opts);
    let mut last_cycles = 0;
    let mut trace = opts.trace.then(|| TraceSink::new(std::io::stderr()));
    while !should_stop(end) {
        let _ = match trace.as_mut() {
            Some(sink) => sup.run_quantum_with(sink)?,
            None => sup.run_quantum()?,
        };
        if opts.verbose {
            let cycles = sup.cycles_completed();
            if cycles > last_cycles {
                last_cycles = cycles;
                if let Some(rec) = sup.cycles().last() {
                    let parts: Vec<String> = rec
                        .entries
                        .iter()
                        .map(|e| format!("{}:{:.0}ms", e.share, e.consumed.as_millis_f64()))
                        .collect();
                    eprintln!(
                        "alps: cycle {:>5}  {:>8.1}ms cpu  [{}]",
                        rec.index,
                        rec.total_consumed.as_millis_f64(),
                        parts.join(" ")
                    );
                }
            }
        }
    }
    let s = sup.stats();
    eprintln!(
        "alps: done — {} quanta, {} measurements, {} signals, {} cycles",
        s.quanta,
        s.measurements,
        s.signals,
        sup.cycles_completed()
    );
    Ok(())
}

fn supervise_users(opts: Opts) -> Result<(), Box<dyn std::error::Error>> {
    install_signal_handlers();
    if opts.actuator != ActuatorMode::Signals {
        return Err(format!(
            "user mode actuates per-process groups via signals only (got --actuator {})",
            opts.actuator
        )
        .into());
    }
    let mut sup = PrincipalSupervisor::new(config(&opts), Duration::from_secs(opts.refresh_s));
    for spec in &opts.specs {
        let uid: u32 = spec
            .target
            .parse()
            .map_err(|_| format!("bad uid {:?}", spec.target))?;
        sup.add_principal(spec.share, Membership::Uid(uid));
        eprintln!("alps: uid {uid} <- {} share(s)", spec.share);
    }
    let end = deadline(&opts);
    let mut trace = opts.trace.then(|| TraceSink::new(std::io::stderr()));
    while !should_stop(end) {
        match trace.as_mut() {
            Some(sink) => sup.run_quantum_with(sink)?,
            None => sup.run_quantum()?,
        }
    }
    sup.release_all();
    eprintln!(
        "alps: done — {} quanta, {} membership refreshes",
        sup.quanta(),
        sup.refreshes()
    );
    Ok(())
}
