//! Hand-rolled argument parsing (no CLI dependency).

use std::fmt;

use alps_os::ActuatorMode;

/// Usage text shown on parse errors and `--help`.
pub const USAGE: &str = "\
alps — user-level proportional-share CPU scheduler (ALPS, HPDC 2006)

USAGE:
    alps run    [OPTIONS] SHARE:COMMAND...   spawn commands under control
    alps attach [OPTIONS] SHARE:PID...       control existing processes
    alps user   [OPTIONS] SHARE:UID...       control users (principals)
    alps probe                               measure Table-1 costs here

OPTIONS:
    -q, --quantum <ms>     ALPS quantum in milliseconds [default: 20]
    -d, --duration <s>     stop after this many seconds [default: forever]
    -r, --refresh <s>      membership refresh period for `user` [default: 1]
    -c, --cpus <n>         CPUs of the governed machine [default: 1];
                           recorded in the config and cycle reports — the
                           algorithm itself enforces shares on *merged*
                           per-member CPU totals, so it needs no per-CPU
                           arithmetic on any machine size
    -a, --actuator <mode>  how duty-cycle intents reach processes
                           [default: signals]: `signals` (SIGSTOP/SIGCONT),
                           `weights` (cgroup-v2 cpu.weight writes), or
                           `caps` (cgroup-v2 cpu.max hard caps); weights
                           and caps need a delegated cgroup-v2 subtree
                           (run/attach modes only)
    -v, --verbose          print a status line at each completed cycle
    -t, --trace            trace every engine event to stderr
    -h, --help             show this help

EXAMPLES:
    alps run 1:'while :; do :; done' 3:'while :; do :; done'
    alps attach -q 10 -d 30 1:4711 4:4712
    alps user 1:1001 2:1002 3:1003";

/// A `share:target` pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShareSpec {
    /// The share weight.
    pub share: u64,
    /// Command string, pid, or uid, depending on mode.
    pub target: String,
}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Cmd {
    /// Spawn and supervise commands.
    Run(Opts),
    /// Supervise existing pids.
    Attach(Opts),
    /// Supervise users as principals.
    User(Opts),
    /// Live Table-1 probe.
    Probe,
    /// Print usage.
    Help,
}

/// Options shared by the supervising modes.
#[derive(Debug, Clone, PartialEq)]
pub struct Opts {
    /// Quantum in milliseconds.
    pub quantum_ms: u64,
    /// Run duration in seconds; `None` = until interrupted.
    pub duration_s: Option<u64>,
    /// Membership refresh period (user mode).
    pub refresh_s: u64,
    /// CPUs of the governed machine (config annotation; the scheduler
    /// works on merged totals regardless).
    pub cpus: usize,
    /// Per-cycle status output.
    pub verbose: bool,
    /// Per-event engine trace on stderr.
    pub trace: bool,
    /// How duty-cycle intents are enforced (signals or cgroup writes).
    pub actuator: ActuatorMode,
    /// The share specs.
    pub specs: Vec<ShareSpec>,
}

/// Parse error.
#[derive(Debug, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

fn err<T>(msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError(msg.into()))
}

fn parse_spec(s: &str) -> Result<ShareSpec, ParseError> {
    let Some((share, target)) = s.split_once(':') else {
        return err(format!("expected SHARE:TARGET, got {s:?}"));
    };
    let share: u64 = share
        .parse()
        .map_err(|_| ParseError(format!("bad share in {s:?}")))?;
    if share == 0 {
        return err(format!("share must be positive in {s:?}"));
    }
    if target.is_empty() {
        return err(format!("empty target in {s:?}"));
    }
    Ok(ShareSpec {
        share,
        target: target.to_string(),
    })
}

/// Parse an argument vector (without the program name).
pub fn parse(argv: &[String]) -> Result<Cmd, ParseError> {
    let mut it = argv.iter().peekable();
    let Some(mode) = it.next() else {
        return err("missing subcommand");
    };
    match mode.as_str() {
        "-h" | "--help" | "help" => return Ok(Cmd::Help),
        "probe" => return Ok(Cmd::Probe),
        "run" | "attach" | "user" => {}
        other => return err(format!("unknown subcommand {other:?}")),
    }
    let mut opts = Opts {
        quantum_ms: 20,
        duration_s: None,
        refresh_s: 1,
        cpus: 1,
        verbose: false,
        trace: false,
        actuator: ActuatorMode::default(),
        specs: Vec::new(),
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-q" | "--quantum" => {
                let v = it
                    .next()
                    .ok_or(ParseError("--quantum needs a value".into()))?;
                opts.quantum_ms = v
                    .parse()
                    .map_err(|_| ParseError(format!("bad quantum {v:?}")))?;
                if opts.quantum_ms == 0 {
                    return err("quantum must be positive");
                }
            }
            "-d" | "--duration" => {
                let v = it
                    .next()
                    .ok_or(ParseError("--duration needs a value".into()))?;
                opts.duration_s = Some(
                    v.parse()
                        .map_err(|_| ParseError(format!("bad duration {v:?}")))?,
                );
            }
            "-r" | "--refresh" => {
                let v = it
                    .next()
                    .ok_or(ParseError("--refresh needs a value".into()))?;
                opts.refresh_s = v
                    .parse()
                    .map_err(|_| ParseError(format!("bad refresh {v:?}")))?;
                if opts.refresh_s == 0 {
                    return err("refresh must be positive");
                }
            }
            "-c" | "--cpus" => {
                let v = it.next().ok_or(ParseError("--cpus needs a value".into()))?;
                opts.cpus = v
                    .parse()
                    .map_err(|_| ParseError(format!("bad cpu count {v:?}")))?;
                if opts.cpus == 0 {
                    return err("cpu count must be positive");
                }
            }
            "-a" | "--actuator" => {
                let v = it
                    .next()
                    .ok_or(ParseError("--actuator needs a mode".into()))?;
                opts.actuator = v.parse().map_err(|e: String| ParseError(e))?;
            }
            "-v" | "--verbose" => opts.verbose = true,
            "-t" | "--trace" => opts.trace = true,
            "-h" | "--help" => return Ok(Cmd::Help),
            spec => opts.specs.push(parse_spec(spec)?),
        }
    }
    if opts.specs.len() < 2 {
        return err("need at least two SHARE:TARGET pairs (one has nothing to share against)");
    }
    Ok(match mode.as_str() {
        "run" => Cmd::Run(opts),
        "attach" => Cmd::Attach(opts),
        _ => Cmd::User(opts),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_run_with_options() {
        let cmd = parse(&v(&["run", "-q", "10", "-d", "30", "1:sleep 5", "3:yes"])).unwrap();
        let Cmd::Run(o) = cmd else { panic!("not run") };
        assert_eq!(o.quantum_ms, 10);
        assert_eq!(o.duration_s, Some(30));
        assert_eq!(o.specs.len(), 2);
        assert_eq!(o.specs[0].share, 1);
        assert_eq!(o.specs[0].target, "sleep 5");
        assert_eq!(o.specs[1].share, 3);
    }

    #[test]
    fn parses_attach_and_user() {
        assert!(matches!(
            parse(&v(&["attach", "1:100", "2:200"])).unwrap(),
            Cmd::Attach(_)
        ));
        let Cmd::User(o) = parse(&v(&["user", "-r", "2", "1:1001", "2:1002"])).unwrap() else {
            panic!()
        };
        assert_eq!(o.refresh_s, 2);
    }

    #[test]
    fn target_may_contain_colons() {
        let Cmd::Run(o) = parse(&v(&["run", "1:echo a:b", "1:true"])).unwrap() else {
            panic!()
        };
        assert_eq!(o.specs[0].target, "echo a:b");
    }

    #[test]
    fn parses_trace_flag() {
        let Cmd::Run(o) = parse(&v(&["run", "--trace", "1:a", "1:b"])).unwrap() else {
            panic!()
        };
        assert!(o.trace);
        let Cmd::Run(o) = parse(&v(&["run", "1:a", "1:b"])).unwrap() else {
            panic!()
        };
        assert!(!o.trace);
    }

    #[test]
    fn parses_cpus_flag() {
        let Cmd::Run(o) = parse(&v(&["run", "--cpus", "4", "1:a", "1:b"])).unwrap() else {
            panic!()
        };
        assert_eq!(o.cpus, 4);
        let Cmd::Run(o) = parse(&v(&["run", "1:a", "1:b"])).unwrap() else {
            panic!()
        };
        assert_eq!(o.cpus, 1, "the paper's one-CPU machine is the default");
        assert!(parse(&v(&["run", "-c", "0", "1:a", "1:b"])).is_err());
    }

    #[test]
    fn parses_actuator_flag() {
        let Cmd::Run(o) = parse(&v(&["run", "--actuator", "weights", "1:a", "1:b"])).unwrap()
        else {
            panic!()
        };
        assert_eq!(o.actuator, ActuatorMode::Weights);
        let Cmd::Run(o) = parse(&v(&["run", "-a", "caps", "1:a", "1:b"])).unwrap() else {
            panic!()
        };
        assert_eq!(o.actuator, ActuatorMode::Caps);
        let Cmd::Run(o) = parse(&v(&["run", "1:a", "1:b"])).unwrap() else {
            panic!()
        };
        assert_eq!(o.actuator, ActuatorMode::Signals, "signals is the default");
        assert!(parse(&v(&["run", "-a", "fpga", "1:a", "1:b"])).is_err());
        assert!(parse(&v(&["run", "-a"])).is_err());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&v(&[])).is_err());
        assert!(parse(&v(&["frobnicate"])).is_err());
        assert!(parse(&v(&["run", "1:x"])).is_err(), "one spec is pointless");
        assert!(parse(&v(&["run", "0:x", "1:y"])).is_err(), "zero share");
        assert!(parse(&v(&["run", "x:y", "1:z"])).is_err(), "bad share");
        assert!(parse(&v(&["run", "1:", "1:z"])).is_err(), "empty target");
        assert!(parse(&v(&["run", "-q", "0", "1:a", "1:b"])).is_err());
    }

    #[test]
    fn help_and_probe() {
        assert_eq!(parse(&v(&["--help"])).unwrap(), Cmd::Help);
        assert_eq!(parse(&v(&["probe"])).unwrap(), Cmd::Probe);
    }
}
