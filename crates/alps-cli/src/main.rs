//! `alps` — a command-line user-level proportional-share CPU scheduler.
//!
//! The paper's ALPS process as a tool: give commands, pids, or whole users
//! CPU shares, with no privileges and no kernel configuration.
//!
//! ```console
//! $ alps run 1:'ffmpeg -i in.mp4 out.webm' 3:'make -j'
//! $ alps attach --quantum 20 1:4711 2:4712 4:4713   # share:pid
//! $ alps user --quantum 100 1:1001 2:1002 3:1003
//! $ alps probe
//! ```

mod args;
mod run;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match args::parse(&argv) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", args::USAGE);
            return ExitCode::from(2);
        }
    };
    match run::execute(parsed) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
