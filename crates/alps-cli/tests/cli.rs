//! End-to-end tests of the `alps` binary: real child processes, real
//! signals, real /proc sampling.

use std::process::Command;

fn alps() -> Command {
    Command::new(env!("CARGO_BIN_EXE_alps"))
}

#[test]
fn help_prints_usage() {
    let out = alps().arg("--help").output().expect("run alps");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("alps run"), "{text}");
    assert!(text.contains("--quantum"), "{text}");
}

#[test]
fn bad_arguments_exit_2_with_usage() {
    let out = alps().arg("frobnicate").output().expect("run alps");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown subcommand"), "{err}");
    assert!(err.contains("USAGE"), "{err}");
}

#[test]
fn probe_reports_microsecond_costs() {
    let out = alps().arg("probe").output().expect("run alps");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("timer event"), "{text}");
    assert!(text.contains("signal a process"), "{text}");
}

#[test]
fn run_mode_enforces_shares_end_to_end() {
    // Two spinners, 1:3, for three seconds of real time.
    let out = alps()
        .args([
            "run",
            "-q",
            "20",
            "-d",
            "3",
            "-v",
            "1:while :; do :; done",
            "3:while :; do :; done",
        ])
        .output()
        .expect("run alps");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    // The verbose cycle log shows per-cycle consumption "1:..ms 3:..ms".
    assert!(err.contains("alps: done"), "{err}");
    assert!(err.contains("cycle"), "{err}");
    // Parse the last cycle line and check the ratio loosely.
    let last = err
        .lines()
        .rfind(|l| l.contains("ms cpu  ["))
        .expect("at least one cycle line");
    let bracket = &last[last.find('[').unwrap() + 1..last.rfind(']').unwrap()];
    let mut parts = bracket.split_whitespace();
    let one: f64 = parts
        .next()
        .unwrap()
        .trim_start_matches("1:")
        .trim_end_matches("ms")
        .parse()
        .unwrap();
    let three: f64 = parts
        .next()
        .unwrap()
        .trim_start_matches("3:")
        .trim_end_matches("ms")
        .parse()
        .unwrap();
    assert!(one > 0.0 && three > 0.0, "{last}");
    let ratio = three / one;
    assert!((1.5..=6.0).contains(&ratio), "ratio {ratio} from {last:?}");
}

#[test]
fn trace_mode_emits_well_formed_events() {
    let out = alps()
        .args([
            "run",
            "-q",
            "20",
            "-d",
            "2",
            "-t",
            "1:while :; do :; done",
            "2:while :; do :; done",
        ])
        .output()
        .expect("run alps");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);

    // Quantum events: "[   <secs>] quantum #<n>: <due> due" — timestamped,
    // numbered, and carrying a due count.
    let quanta: Vec<&str> = err.lines().filter(|l| l.contains("quantum #")).collect();
    assert!(quanta.len() >= 10, "expected many quantum events:\n{err}");
    for l in &quanta {
        assert!(l.starts_with('['), "{l}");
        assert!(l.contains("] quantum #"), "{l}");
        assert!(l.trim_end().ends_with("due"), "{l}");
    }
    // Quantum numbers are strictly increasing.
    let numbers: Vec<u64> = quanta
        .iter()
        .map(|l| {
            let after = &l[l.find('#').unwrap() + 1..];
            after[..after.find(':').unwrap()].parse().unwrap()
        })
        .collect();
    assert!(numbers.windows(2).all(|w| w[0] < w[1]), "{numbers:?}");

    // Signal events name the member and the signal direction.
    let signals: Vec<&str> = err.lines().filter(|l| l.contains("signal  ")).collect();
    assert!(!signals.is_empty(), "{err}");
    for l in &signals {
        assert!(l.contains(": STOP") || l.contains(": CONT"), "{l}");
    }

    // Measurements report cpu in milliseconds; cycle completions are
    // timestamped like quanta.
    assert!(
        err.lines()
            .any(|l| l.contains("measure ") && l.contains("ms")),
        "{err}"
    );
    assert!(
        err.lines()
            .any(|l| l.starts_with('[') && l.contains("cycle") && l.contains("complete")),
        "{err}"
    );
    assert!(err.contains("alps: done"), "{err}");
}

#[test]
fn bad_share_spec_exits_2_with_usage() {
    for argv in [
        vec!["run", "0:sleep 1", "1:sleep 1"],  // zero share
        vec!["run", "nocolon", "1:sleep 1"],    // no colon
        vec!["run", "x:sleep 1", "1:sleep 1"],  // non-numeric share
        vec!["run", "1:sleep 1"],               // only one spec
        vec!["run", "-q", "0", "1:a", "2:b"],   // zero quantum
        vec!["run", "-q", "abc", "1:a", "2:b"], // bad quantum
        vec!["run", "--quantum"],               // missing value
        vec![],                                 // no subcommand
    ] {
        let out = alps().args(&argv).output().expect("run alps");
        assert_eq!(out.status.code(), Some(2), "argv {argv:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("error:"), "argv {argv:?}: {err}");
        assert!(err.contains("USAGE"), "argv {argv:?}: {err}");
    }
}

#[test]
fn runtime_failure_exits_1_without_usage() {
    // Both pids missing: parse succeeds, execution fails.
    let out = alps()
        .args(["attach", "-d", "1", "1:999999999", "1:999999998"])
        .output()
        .expect("run alps");
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error:"), "{err}");
    assert!(!err.contains("USAGE"), "{err}");
}

#[test]
fn attach_mode_rejects_missing_pid() {
    let out = alps()
        .args(["attach", "-d", "1", "1:999999999", "1:999999998"])
        .output()
        .expect("run alps");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error"), "{err}");
}
