//! End-to-end tests of the `alps` binary: real child processes, real
//! signals, real /proc sampling.

use std::process::Command;

fn alps() -> Command {
    Command::new(env!("CARGO_BIN_EXE_alps"))
}

#[test]
fn help_prints_usage() {
    let out = alps().arg("--help").output().expect("run alps");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("alps run"), "{text}");
    assert!(text.contains("--quantum"), "{text}");
}

#[test]
fn bad_arguments_exit_2_with_usage() {
    let out = alps().arg("frobnicate").output().expect("run alps");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown subcommand"), "{err}");
    assert!(err.contains("USAGE"), "{err}");
}

#[test]
fn probe_reports_microsecond_costs() {
    let out = alps().arg("probe").output().expect("run alps");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("timer event"), "{text}");
    assert!(text.contains("signal a process"), "{text}");
}

#[test]
fn run_mode_enforces_shares_end_to_end() {
    // Two spinners, 1:3, for three seconds of real time.
    let out = alps()
        .args([
            "run",
            "-q",
            "20",
            "-d",
            "3",
            "-v",
            "1:while :; do :; done",
            "3:while :; do :; done",
        ])
        .output()
        .expect("run alps");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    // The verbose cycle log shows per-cycle consumption "1:..ms 3:..ms".
    assert!(err.contains("alps: done"), "{err}");
    assert!(err.contains("cycle"), "{err}");
    // Parse the last cycle line and check the ratio loosely.
    let last = err
        .lines()
        .rfind(|l| l.contains("ms cpu  ["))
        .expect("at least one cycle line");
    let bracket = &last[last.find('[').unwrap() + 1..last.rfind(']').unwrap()];
    let mut parts = bracket.split_whitespace();
    let one: f64 = parts
        .next()
        .unwrap()
        .trim_start_matches("1:")
        .trim_end_matches("ms")
        .parse()
        .unwrap();
    let three: f64 = parts
        .next()
        .unwrap()
        .trim_start_matches("3:")
        .trim_end_matches("ms")
        .parse()
        .unwrap();
    assert!(one > 0.0 && three > 0.0, "{last}");
    let ratio = three / one;
    assert!((1.5..=6.0).contains(&ratio), "ratio {ratio} from {last:?}");
}

#[test]
fn attach_mode_rejects_missing_pid() {
    let out = alps()
        .args(["attach", "-d", "1", "1:999999999", "1:999999998"])
        .output()
        .expect("run alps");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error"), "{err}");
}
