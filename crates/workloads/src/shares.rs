//! The share distributions of Table 2.
//!
//! The paper evaluates workloads of 5, 10, or 20 processes whose shares
//! follow one of three models, with the total always `n²` for an
//! `n`-process workload (the paper notes shares were deliberately *not*
//! scaled by their GCD):
//!
//! | model  | 5 procs            | total |
//! |--------|--------------------|-------|
//! | Linear | {1, 3, 5, 7, 9}    | 25    |
//! | Equal  | {5, 5, 5, 5, 5}    | 25    |
//! | Skewed | {1, 1, 1, 1, 21}   | 25    |

use core::fmt;

use serde::{Deserialize, Serialize};

/// A share-distribution model from Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShareModel {
    /// Shares 1, 3, 5, …, 2n−1 (sums to n²).
    Linear,
    /// Every process gets n shares (sums to n²).
    Equal,
    /// n−1 processes get a single share; the last gets n²−(n−1).
    Skewed,
}

impl ShareModel {
    /// All three models, in the paper's order.
    pub const ALL: [ShareModel; 3] = [ShareModel::Linear, ShareModel::Equal, ShareModel::Skewed];

    /// The share vector for an `n`-process workload.
    pub fn shares(self, n: usize) -> Vec<u64> {
        assert!(n >= 1, "workload needs at least one process");
        let n64 = n as u64;
        match self {
            ShareModel::Linear => (0..n64).map(|i| 2 * i + 1).collect(),
            ShareModel::Equal => vec![n64; n],
            ShareModel::Skewed => {
                let mut v = vec![1u64; n - 1];
                v.push(n64 * n64 - (n64 - 1));
                v
            }
        }
    }

    /// Total shares (always n²).
    pub fn total_shares(self, n: usize) -> u64 {
        self.shares(n).iter().sum()
    }

    /// The paper's name for a workload, e.g. `Skewed10`.
    pub fn workload_name(self, n: usize) -> String {
        format!("{self}{n}")
    }
}

impl fmt::Display for ShareModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ShareModel::Linear => "Linear",
            ShareModel::Equal => "Equal",
            ShareModel::Skewed => "Skewed",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_linear() {
        assert_eq!(ShareModel::Linear.shares(5), vec![1, 3, 5, 7, 9]);
        assert_eq!(
            ShareModel::Linear.shares(10),
            vec![1, 3, 5, 7, 9, 11, 13, 15, 17, 19]
        );
        let l20 = ShareModel::Linear.shares(20);
        assert_eq!(l20[0], 1);
        assert_eq!(l20[17], 35);
        assert_eq!(l20[18], 37);
        assert_eq!(l20[19], 39);
    }

    #[test]
    fn table2_equal() {
        assert_eq!(ShareModel::Equal.shares(5), vec![5; 5]);
        assert_eq!(ShareModel::Equal.shares(10), vec![10; 10]);
        assert_eq!(ShareModel::Equal.shares(20), vec![20; 20]);
    }

    #[test]
    fn table2_skewed() {
        assert_eq!(ShareModel::Skewed.shares(5), vec![1, 1, 1, 1, 21]);
        let s10 = ShareModel::Skewed.shares(10);
        assert_eq!(&s10[..9], &[1; 9]);
        assert_eq!(s10[9], 91);
        let s20 = ShareModel::Skewed.shares(20);
        assert_eq!(&s20[..19], &[1; 19]);
        assert_eq!(s20[19], 381);
    }

    #[test]
    fn totals_are_n_squared() {
        for model in ShareModel::ALL {
            for n in [1, 2, 5, 10, 20, 33] {
                assert_eq!(
                    model.total_shares(n),
                    (n * n) as u64,
                    "{model} with {n} processes"
                );
            }
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(ShareModel::Skewed.workload_name(10), "Skewed10");
        assert_eq!(ShareModel::Equal.workload_name(20), "Equal20");
        assert_eq!(ShareModel::Linear.workload_name(5), "Linear5");
    }
}
