//! The uniform workload interface: [`Workload`], [`Tenant`], and
//! [`LatencyProbe`].
//!
//! Every workload generator in this crate — web sites, batch stages,
//! trace replays, open-loop traffic — is a *spec* struct implementing
//! [`Workload`]: `spawn(&self, sim)` materializes the spec's processes
//! into a simulation and hands back a [`Tenant`], the uniform handle the
//! experiments operate on. A tenant knows which of its pids are
//! ALPS-visible [`Tenant::members`] (handed to `spawn_alps_principals` /
//! membership scans) and which are auxiliary infrastructure
//! ([`Tenant::aux`] — e.g. an open-loop arrival generator that must never
//! be SIGSTOPped, or arrivals would depend on scheduling). Every tenant
//! carries a [`LatencyProbe`] that its behaviors feed per-request
//! `(latency, service)` samples; the probe renders
//! [`alps_metrics::LatencySummary`] blocks for tables and for the SLO
//! controller's control periods.
//!
//! # The stream-splitting rule
//!
//! All randomness a workload consumes MUST come from stateless indexed
//! streams: draw *k* of stream *s* for a tenant seeded *seed* is
//! `stream(seed, s, k)` — a [`splitmix64`] mix of the three values, never
//! a shared RNG advanced in arrival order. Shared-RNG advance order
//! couples tenants to the scheduler: adding a tenant, changing a share,
//! or reordering a sweep would perturb every other tenant's costs.
//! Indexed streams make request *k*'s cost a pure function of the spec,
//! so arrival traces and service demands are byte-identical across
//! thread counts, seed orders, and controller on/off runs.

use std::cell::RefCell;
use std::rc::Rc;

use alps_metrics::{LatencyHistogram, LatencySummary};
use kernsim::{Pid, Sim};

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draw `index` of stream `stream_id` for a tenant seeded `seed` — the
/// stream-splitting rule's one entry point (see module docs).
pub fn stream(seed: u64, stream_id: u64, index: u64) -> u64 {
    splitmix64(splitmix64(seed ^ stream_id.wrapping_mul(0xA076_1D64_78BD_642F)).wrapping_add(index))
}

/// Map a raw stream draw to a uniform f64 in `[0, 1)`.
pub fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Map a raw stream draw to a multiplicative jitter factor in
/// `[1-j, 1+j]`; `j <= 0` yields exactly 1.0.
pub fn jitter_factor(bits: u64, jitter: f64) -> f64 {
    if jitter <= 0.0 {
        1.0
    } else {
        1.0 - jitter + 2.0 * jitter * unit_f64(bits)
    }
}

#[derive(Debug, Default)]
struct ProbeInner {
    /// `(latency_ns, service_ns)` per completed request, completion order.
    samples: Vec<(u64, u64)>,
    /// Requests dropped before service (open-loop queue overflow).
    dropped: u64,
}

/// Shared per-tenant latency recorder: behaviors push one
/// `(latency, service)` sample per completed request; readers render
/// [`LatencySummary`] blocks over all samples or over a window (the SLO
/// controller's per-period view).
#[derive(Debug, Clone, Default)]
pub struct LatencyProbe {
    inner: Rc<RefCell<ProbeInner>>,
}

impl LatencyProbe {
    /// A fresh, empty probe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one completed request.
    pub fn record(&self, latency_ns: u64, service_ns: u64) {
        self.inner
            .borrow_mut()
            .samples
            .push((latency_ns, service_ns));
    }

    /// Count one request dropped before service (queue overflow).
    pub fn record_drop(&self) {
        self.inner.borrow_mut().dropped += 1;
    }

    /// Requests completed so far.
    pub fn completed(&self) -> u64 {
        self.inner.borrow().samples.len() as u64
    }

    /// Requests dropped so far.
    pub fn dropped(&self) -> u64 {
        self.inner.borrow().dropped
    }

    /// All completed-request latencies in completion order, nanoseconds.
    pub fn latencies_ns(&self) -> Vec<u64> {
        self.inner
            .borrow()
            .samples
            .iter()
            .map(|&(l, _)| l)
            .collect()
    }

    /// Histogram over completions after `skip` warm-up requests.
    pub fn histogram(&self, skip: usize) -> LatencyHistogram {
        let inner = self.inner.borrow();
        let mut h = LatencyHistogram::new();
        for &(l, s) in inner.samples.iter().skip(skip) {
            h.record(l, s);
        }
        h
    }

    /// Summary over completions after `skip` warm-up requests.
    pub fn summary(&self, skip: usize) -> LatencySummary {
        LatencySummary::from_histogram(&self.histogram(skip))
    }

    /// Summary of the samples recorded since `cursor`, plus the new
    /// cursor — the SLO controller's per-control-period window.
    pub fn window_summary(&self, cursor: usize) -> (LatencySummary, usize) {
        let inner = self.inner.borrow();
        let mut h = LatencyHistogram::new();
        for &(l, s) in inner.samples.iter().skip(cursor) {
            h.record(l, s);
        }
        (LatencySummary::from_histogram(&h), inner.samples.len())
    }

    /// A latency percentile (0.0–1.0) over completions after `skip`
    /// warm-up requests, in milliseconds; exact (sorts the raw samples),
    /// `None` if no samples.
    pub fn percentile_ms(&self, pct: f64, skip: usize) -> Option<f64> {
        let inner = self.inner.borrow();
        let mut xs: Vec<u64> = inner.samples.iter().skip(skip).map(|&(l, _)| l).collect();
        if xs.is_empty() {
            return None;
        }
        xs.sort_unstable();
        let idx = ((xs.len() - 1) as f64 * pct.clamp(0.0, 1.0)).round() as usize;
        Some(xs[idx] as f64 / 1e6)
    }
}

/// The uniform handle a spawned workload hands back: its name, its
/// ALPS-visible member pids, its auxiliary (never-signalled) pids, and
/// its latency probe.
#[derive(Debug, Clone)]
pub struct Tenant {
    /// Tenant name (e.g. the user account the workload runs as).
    pub name: String,
    /// Pids ALPS schedules: hand these to membership scans. For the web
    /// model this includes idle pool workers — they exist and are
    /// measured even though they never contend.
    pub members: Vec<Pid>,
    /// Auxiliary pids that must stay outside ALPS's reach — e.g. an
    /// open-loop arrival generator, whose timing must not depend on the
    /// tenant's share.
    pub aux: Vec<Pid>,
    probe: LatencyProbe,
}

impl Tenant {
    /// Assemble a tenant handle (workload `spawn` implementations call
    /// this).
    pub fn new(
        name: impl Into<String>,
        members: Vec<Pid>,
        aux: Vec<Pid>,
        probe: LatencyProbe,
    ) -> Self {
        Tenant {
            name: name.into(),
            members,
            aux,
            probe,
        }
    }

    /// The tenant's latency probe.
    pub fn probe(&self) -> &LatencyProbe {
        &self.probe
    }

    /// Requests completed since spawn.
    pub fn completed(&self) -> u64 {
        self.probe.completed()
    }

    /// Wall-clock latencies of all completed requests, completion order,
    /// nanoseconds.
    pub fn latencies_ns(&self) -> Vec<u64> {
        self.probe.latencies_ns()
    }

    /// A latency percentile (0.0–1.0) over completions after `skip`
    /// warm-up requests, in milliseconds. `None` if no samples.
    pub fn latency_percentile_ms(&self, pct: f64, skip: usize) -> Option<f64> {
        self.probe.percentile_ms(pct, skip)
    }

    /// Latency/stretch/yield summary after `skip` warm-up requests.
    pub fn latency_summary(&self, skip: usize) -> LatencySummary {
        self.probe.summary(skip)
    }

    /// Throughput over a window, given completion counts sampled at the
    /// window's edges.
    pub fn throughput_rps(completed_delta: u64, window: alps_core::Nanos) -> f64 {
        completed_delta as f64 / window.as_secs_f64()
    }
}

/// A workload spec: `spawn` materializes it into a simulation and
/// returns the uniform [`Tenant`] handle.
pub trait Workload {
    /// Spawn this workload's processes into `sim`.
    fn spawn(&self, sim: &mut Sim) -> Tenant;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_stateless_and_distinct() {
        // Same coordinates, same draw; any coordinate change, new draw.
        assert_eq!(stream(1, 2, 3), stream(1, 2, 3));
        assert_ne!(stream(1, 2, 3), stream(1, 2, 4));
        assert_ne!(stream(1, 2, 3), stream(1, 3, 3));
        assert_ne!(stream(1, 2, 3), stream(2, 2, 3));
    }

    #[test]
    fn unit_draws_cover_the_unit_interval() {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for k in 0..10_000 {
            let u = unit_f64(stream(7, 1, k));
            assert!((0.0..1.0).contains(&u));
            lo = lo.min(u);
            hi = hi.max(u);
        }
        assert!(lo < 0.01 && hi > 0.99, "draws span [0,1): {lo}..{hi}");
    }

    #[test]
    fn jitter_factor_bounds() {
        for k in 0..1_000 {
            let f = jitter_factor(stream(9, 2, k), 0.3);
            assert!((0.7..=1.3).contains(&f), "{f}");
        }
        assert_eq!(jitter_factor(12345, 0.0), 1.0);
    }

    #[test]
    fn probe_summary_and_windows() {
        let p = LatencyProbe::new();
        for i in 1..=10u64 {
            p.record(i * 1_000_000, 1_000_000);
        }
        assert_eq!(p.completed(), 10);
        let s = p.summary(0);
        assert_eq!(s.count, 10);
        assert!(s.max_ms > 9.0);
        // Window: only what arrived since the cursor.
        let (w, cur) = p.window_summary(8);
        assert_eq!(w.count, 2);
        assert_eq!(cur, 10);
        let (w2, _) = p.window_summary(cur);
        assert_eq!(w2.count, 0);
        // Exact percentile over raw samples.
        assert_eq!(p.percentile_ms(1.0, 0), Some(10.0));
        assert_eq!(p.percentile_ms(0.0, 9), Some(10.0));
    }
}
