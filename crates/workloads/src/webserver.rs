//! The §5 shared-web-server workload.
//!
//! The paper hosts three instances of the RUBBoS bulletin-board site
//! (Apache + PHP + MySQL) on one machine, each instance running as a
//! different user with a pool of up to 50 worker processes, driven by 325
//! closed-loop clients per site — enough to saturate the server, whose
//! *CPU is the bottleneck* (established by Amza et al., the paper's refs
//! [1, 2]). We model exactly that regime: each worker process serves
//! requests back-to-back, a request costing some CPU on the web server
//! (PHP execution) followed by a blocking wait (the database round trip).
//! Because the client population saturates the pools, a worker always has
//! a next request — the closed-loop clients need not be simulated
//! individually.
//!
//! Throughput (requests/second) is counted per site at the moment a
//! request's database wait completes.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use alps_core::Nanos;
use kernsim::{Behavior, Pid, Sim, SimCtl, Step};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of one hosted site.
#[derive(Debug, Clone, Copy)]
pub struct SiteSpec {
    /// Worker processes in the pool (the paper's Apache `prefork` limit
    /// was 50 per site). All of them exist and are visible to ALPS's
    /// membership scans.
    pub workers: usize,
    /// Workers concurrently *serving* a request. The paper's client count
    /// (325/site) was tuned to just saturate the server, so at any instant
    /// only a handful of each pool's workers hold the CPU or a database
    /// wait; the rest sit blocked on accept. Must be <= `workers`.
    pub active: usize,
    /// Mean CPU cost of one request on the web server (PHP execution).
    /// Calibrated to ~10 ms so a 2.2 GHz-class machine saturates around
    /// 100 requests/s — the paper's observed aggregate.
    pub cpu_per_request: Nanos,
    /// Mean blocking time per request (database round trip).
    pub db_wait: Nanos,
    /// Multiplicative jitter applied to each cost, in `[1-j, 1+j]`.
    pub jitter: f64,
    /// RNG seed for this site's request cost jitter.
    pub seed: u64,
}

impl Default for SiteSpec {
    fn default() -> Self {
        SiteSpec {
            workers: 50,
            active: 8,
            cpu_per_request: Nanos::from_millis(10),
            db_wait: Nanos::from_millis(40),
            jitter: 0.3,
            seed: 1,
        }
    }
}

/// A spawned site: its worker pids and its completed-request counter.
#[derive(Debug, Clone)]
pub struct Site {
    /// Site name (e.g. the user account it runs as).
    pub name: String,
    /// Pids of the worker processes.
    pub workers: Vec<Pid>,
    /// Requests completed so far (shared with the worker behaviors).
    completed: Rc<Cell<u64>>,
    /// Wall-clock latency of each completed request, in nanoseconds.
    latencies: Rc<RefCell<Vec<u64>>>,
}

impl Site {
    /// Requests completed since spawn.
    pub fn completed(&self) -> u64 {
        self.completed.get()
    }

    /// Wall-clock latencies (request start to completion) of all completed
    /// requests, in order of completion.
    pub fn latencies_ns(&self) -> Vec<u64> {
        self.latencies.borrow().clone()
    }

    /// A latency percentile (0.0–1.0) over completions after `skip`
    /// warm-up requests, in milliseconds. `None` if no samples.
    pub fn latency_percentile_ms(&self, pct: f64, skip: usize) -> Option<f64> {
        let lat = self.latencies.borrow();
        let mut xs: Vec<u64> = lat.iter().skip(skip).copied().collect();
        if xs.is_empty() {
            return None;
        }
        xs.sort_unstable();
        let idx = ((xs.len() - 1) as f64 * pct.clamp(0.0, 1.0)).round() as usize;
        Some(xs[idx] as f64 / 1e6)
    }

    /// Throughput over a window, given completion counts sampled at the
    /// window's edges.
    pub fn throughput_rps(completed_delta: u64, window: Nanos) -> f64 {
        completed_delta as f64 / window.as_secs_f64()
    }
}

#[derive(Debug, Clone, Copy)]
enum WorkerPhase {
    /// About to execute the request's CPU part.
    Cpu,
    /// CPU done; about to block on the database.
    Db,
    /// Database reply arrived; request complete.
    Done,
}

struct Worker {
    cpu: Nanos,
    db: Nanos,
    jitter: f64,
    rng: SmallRng,
    completed: Rc<Cell<u64>>,
    latencies: Rc<RefCell<Vec<u64>>>,
    phase: WorkerPhase,
    request_started: Nanos,
}

impl Worker {
    fn jittered(&mut self, base: Nanos) -> Nanos {
        if self.jitter <= 0.0 {
            return base;
        }
        let k = self.rng.gen_range(1.0 - self.jitter..=1.0 + self.jitter);
        base.mul_f64(k).max(Nanos::from_micros(10))
    }
}

impl Behavior for Worker {
    fn on_ready(&mut self, ctl: &mut SimCtl<'_>) -> Step {
        match self.phase {
            WorkerPhase::Cpu => {
                self.request_started = ctl.now();
                self.phase = WorkerPhase::Db;
                let d = self.jittered(self.cpu);
                Step::Compute(d)
            }
            WorkerPhase::Db => {
                self.phase = WorkerPhase::Done;
                let d = self.jittered(self.db);
                Step::Sleep(d)
            }
            WorkerPhase::Done => {
                self.completed.set(self.completed.get() + 1);
                let latency = (ctl.now() - self.request_started).as_nanos();
                self.latencies.borrow_mut().push(latency);
                self.request_started = ctl.now();
                self.phase = WorkerPhase::Db;
                let d = self.jittered(self.cpu);
                Step::Compute(d)
            }
        }
    }

    fn name(&self) -> &str {
        "httpd-worker"
    }
}

/// A pool worker with no request to serve: parked on accept(2). It still
/// exists, is owned by the site's user, and is scanned and measured by a
/// principal-mode ALPS — it just never contends for the CPU.
struct IdleWorker;

impl Behavior for IdleWorker {
    fn on_ready(&mut self, _ctl: &mut SimCtl<'_>) -> Step {
        Step::Sleep(Nanos::from_secs(3600))
    }

    fn name(&self) -> &str {
        "httpd-idle"
    }
}

/// Spawn one site's worker pool into the simulation.
pub fn spawn_site(sim: &mut Sim, name: &str, spec: &SiteSpec) -> Site {
    assert!(spec.workers >= 1, "a site needs at least one worker");
    assert!(
        (1..=spec.workers).contains(&spec.active),
        "active must be in 1..=workers"
    );
    let completed = Rc::new(Cell::new(0));
    let latencies = Rc::new(RefCell::new(Vec::new()));
    let mut workers = Vec::with_capacity(spec.workers);
    for w in 0..spec.workers {
        let pid = if w < spec.active {
            let behavior = Worker {
                cpu: spec.cpu_per_request,
                db: spec.db_wait,
                jitter: spec.jitter,
                rng: SmallRng::seed_from_u64(
                    spec.seed.wrapping_mul(0x9E37_79B9).wrapping_add(w as u64),
                ),
                completed: Rc::clone(&completed),
                latencies: Rc::clone(&latencies),
                phase: WorkerPhase::Cpu,
                request_started: Nanos::ZERO,
            };
            sim.spawn(format!("{name}-w{w}"), Box::new(behavior))
        } else {
            sim.spawn(format!("{name}-idle{w}"), Box::new(IdleWorker))
        };
        workers.push(pid);
    }
    Site {
        name: name.to_string(),
        workers,
        completed,
        latencies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernsim::SimConfig;

    #[test]
    fn saturated_site_throughput_tracks_cpu_cost() {
        // One site alone: CPU-bound at ~1/cpu_per_request requests/s.
        let mut sim = Sim::new(SimConfig::default());
        let spec = SiteSpec {
            workers: 20,
            active: 20,
            cpu_per_request: Nanos::from_millis(10),
            db_wait: Nanos::from_millis(40),
            jitter: 0.0,
            seed: 7,
        };
        let site = spawn_site(&mut sim, "solo", &spec);
        sim.run_until(Nanos::from_secs(20));
        let rps = site.completed() as f64 / 20.0;
        // 20 workers × 10ms CPU per request with 40ms waits: the CPU is the
        // bottleneck (20 × 10/50 = 4× oversubscribed), so ~100 req/s.
        assert!(rps > 85.0 && rps < 101.0, "got {rps} req/s");
        assert!(sim.idle_time() < Nanos::from_millis(600), "CPU saturated");
    }

    #[test]
    fn three_equal_sites_split_roughly_evenly() {
        let mut sim = Sim::new(SimConfig::default());
        let mut sites = Vec::new();
        for (i, name) in ["alice", "bob", "carol"].iter().enumerate() {
            let spec = SiteSpec {
                workers: 10,
                active: 8,
                seed: i as u64 + 1,
                ..SiteSpec::default()
            };
            sites.push(spawn_site(&mut sim, name, &spec));
        }
        sim.run_until(Nanos::from_secs(30));
        let counts: Vec<f64> = sites.iter().map(|s| s.completed() as f64).collect();
        let total: f64 = counts.iter().sum();
        for (s, c) in sites.iter().zip(&counts) {
            let fraction = c / total;
            assert!(
                (fraction - 1.0 / 3.0).abs() < 0.08,
                "{}: fraction {fraction}",
                s.name
            );
        }
    }

    #[test]
    fn underloaded_worker_pool_leaves_idle_cpu() {
        // One worker with long DB waits cannot saturate the CPU.
        let mut sim = Sim::new(SimConfig::default());
        let spec = SiteSpec {
            workers: 1,
            active: 1,
            cpu_per_request: Nanos::from_millis(5),
            db_wait: Nanos::from_millis(95),
            jitter: 0.0,
            seed: 3,
        };
        let site = spawn_site(&mut sim, "tiny", &spec);
        sim.run_until(Nanos::from_secs(10));
        // 5ms CPU per 100ms round trip → ~10 req/s, ~95% idle.
        let rps = site.completed() as f64 / 10.0;
        assert!((rps - 10.0).abs() < 1.0, "got {rps}");
        assert!(sim.idle_time() > Nanos::from_secs(9));
    }
}
