//! The §5 shared-web-server workload.
//!
//! The paper hosts three instances of the RUBBoS bulletin-board site
//! (Apache + PHP + MySQL) on one machine, each instance running as a
//! different user with a pool of up to 50 worker processes, driven by 325
//! closed-loop clients per site — enough to saturate the server, whose
//! *CPU is the bottleneck* (established by Amza et al., the paper's refs
//! [1, 2]). We model exactly that regime: each worker process serves
//! requests back-to-back, a request costing some CPU on the web server
//! (PHP execution) followed by a blocking wait (the database round trip).
//! Because the client population saturates the pools, a worker always has
//! a next request — the closed-loop clients need not be simulated
//! individually.
//!
//! [`Site`] is the spec; [`Site::spawn`] (the [`Workload`] impl) hands
//! back a [`Tenant`] whose probe counts completions and records
//! per-request latency. Request costs follow the crate's
//! stream-splitting rule: request *k* of a site draws its CPU and DB
//! jitter from `stream(seed, STREAM_CPU|STREAM_DB, k)` against a
//! site-wide request counter — never from a per-worker RNG advanced in
//! service order, which would make costs depend on scheduling and on
//! which co-tenants exist.

use std::cell::Cell;
use std::rc::Rc;

use alps_core::Nanos;
use kernsim::{Behavior, Sim, SimCtl, Step};

use crate::traffic::{STREAM_CPU, STREAM_DB};
use crate::workload::{jitter_factor, stream, LatencyProbe, Tenant, Workload};

/// One hosted site: the spec the §5 experiments spawn per user.
#[derive(Debug, Clone)]
pub struct Site {
    /// Site name (e.g. the user account it runs as).
    pub name: String,
    /// Worker processes in the pool (the paper's Apache `prefork` limit
    /// was 50 per site). All of them exist and are visible to ALPS's
    /// membership scans.
    pub workers: usize,
    /// Workers concurrently *serving* a request. The paper's client count
    /// (325/site) was tuned to just saturate the server, so at any instant
    /// only a handful of each pool's workers hold the CPU or a database
    /// wait; the rest sit blocked on accept. Must be <= `workers`.
    pub active: usize,
    /// Mean CPU cost of one request on the web server (PHP execution).
    /// Calibrated to ~10 ms so a 2.2 GHz-class machine saturates around
    /// 100 requests/s — the paper's observed aggregate.
    pub cpu_per_request: Nanos,
    /// Mean blocking time per request (database round trip).
    pub db_wait: Nanos,
    /// Multiplicative jitter applied to each cost, in `[1-j, 1+j]`.
    pub jitter: f64,
    /// RNG seed for this site's request cost streams.
    pub seed: u64,
}

impl Default for Site {
    fn default() -> Self {
        Site {
            name: "site".into(),
            workers: 50,
            active: 8,
            cpu_per_request: Nanos::from_millis(10),
            db_wait: Nanos::from_millis(40),
            jitter: 0.3,
            seed: 1,
        }
    }
}

impl Workload for Site {
    fn spawn(&self, sim: &mut Sim) -> Tenant {
        assert!(self.workers >= 1, "a site needs at least one worker");
        assert!(
            (1..=self.workers).contains(&self.active),
            "active must be in 1..=workers"
        );
        let probe = LatencyProbe::new();
        let next_request = Rc::new(Cell::new(0u64));
        let mut members = Vec::with_capacity(self.workers);
        for w in 0..self.workers {
            let pid = if w < self.active {
                let behavior = Worker {
                    cpu: self.cpu_per_request,
                    db: self.db_wait,
                    jitter: self.jitter,
                    seed: self.seed,
                    next_request: Rc::clone(&next_request),
                    probe: probe.clone(),
                    phase: WorkerPhase::Cpu,
                    request_started: Nanos::ZERO,
                    request_index: 0,
                };
                sim.spawn(format!("{}-w{w}", self.name), Box::new(behavior))
            } else {
                sim.spawn(format!("{}-idle{w}", self.name), Box::new(IdleWorker))
            };
            members.push(pid);
        }
        Tenant::new(self.name.clone(), members, Vec::new(), probe)
    }
}

#[derive(Debug, Clone, Copy)]
enum WorkerPhase {
    /// About to execute the request's CPU part.
    Cpu,
    /// CPU done; about to block on the database.
    Db,
    /// Database reply arrived; request complete.
    Done,
}

struct Worker {
    cpu: Nanos,
    db: Nanos,
    jitter: f64,
    seed: u64,
    /// Site-wide request counter: each request claims the next index and
    /// draws its costs from the indexed streams (stream-splitting rule).
    next_request: Rc<Cell<u64>>,
    probe: LatencyProbe,
    phase: WorkerPhase,
    request_started: Nanos,
    request_index: u64,
}

impl Worker {
    fn claim_request(&mut self) {
        self.request_index = self.next_request.get();
        self.next_request.set(self.request_index + 1);
    }

    fn jittered(&self, base: Nanos, stream_id: u64) -> Nanos {
        let k = jitter_factor(
            stream(self.seed, stream_id, self.request_index),
            self.jitter,
        );
        base.mul_f64(k).max(Nanos::from_micros(10))
    }
}

impl Behavior for Worker {
    fn on_ready(&mut self, ctl: &mut SimCtl<'_>) -> Step {
        match self.phase {
            WorkerPhase::Cpu => {
                self.claim_request();
                self.request_started = ctl.now();
                self.phase = WorkerPhase::Db;
                Step::Compute(self.jittered(self.cpu, STREAM_CPU))
            }
            WorkerPhase::Db => {
                self.phase = WorkerPhase::Done;
                Step::Sleep(self.jittered(self.db, STREAM_DB))
            }
            WorkerPhase::Done => {
                let latency = (ctl.now() - self.request_started).as_nanos();
                // Intrinsic demand: the request's own CPU + DB time.
                let service = (self.jittered(self.cpu, STREAM_CPU)
                    + self.jittered(self.db, STREAM_DB))
                .as_nanos();
                self.probe.record(latency, service);
                self.claim_request();
                self.request_started = ctl.now();
                self.phase = WorkerPhase::Db;
                Step::Compute(self.jittered(self.cpu, STREAM_CPU))
            }
        }
    }

    fn name(&self) -> &str {
        "httpd-worker"
    }
}

/// A pool worker with no request to serve: parked on accept(2). It still
/// exists, is owned by the site's user, and is scanned and measured by a
/// principal-mode ALPS — it just never contends for the CPU.
struct IdleWorker;

impl Behavior for IdleWorker {
    fn on_ready(&mut self, _ctl: &mut SimCtl<'_>) -> Step {
        Step::Sleep(Nanos::from_secs(3600))
    }

    fn name(&self) -> &str {
        "httpd-idle"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernsim::SimConfig;

    #[test]
    fn saturated_site_throughput_tracks_cpu_cost() {
        // One site alone: CPU-bound at ~1/cpu_per_request requests/s.
        let mut sim = Sim::new(SimConfig::default());
        let site = Site {
            name: "solo".into(),
            workers: 20,
            active: 20,
            cpu_per_request: Nanos::from_millis(10),
            db_wait: Nanos::from_millis(40),
            jitter: 0.0,
            seed: 7,
        }
        .spawn(&mut sim);
        sim.run_until(Nanos::from_secs(20));
        let rps = site.completed() as f64 / 20.0;
        // 20 workers × 10ms CPU per request with 40ms waits: the CPU is the
        // bottleneck (20 × 10/50 = 4× oversubscribed), so ~100 req/s.
        assert!(rps > 85.0 && rps < 101.0, "got {rps} req/s");
        assert!(sim.idle_time() < Nanos::from_millis(600), "CPU saturated");
    }

    #[test]
    fn three_equal_sites_split_roughly_evenly() {
        let mut sim = Sim::new(SimConfig::default());
        let mut sites = Vec::new();
        for (i, name) in ["alice", "bob", "carol"].iter().enumerate() {
            let site = Site {
                name: name.to_string(),
                workers: 10,
                active: 8,
                seed: i as u64 + 1,
                ..Site::default()
            };
            sites.push(site.spawn(&mut sim));
        }
        sim.run_until(Nanos::from_secs(30));
        let counts: Vec<f64> = sites.iter().map(|s| s.completed() as f64).collect();
        let total: f64 = counts.iter().sum();
        for (s, c) in sites.iter().zip(&counts) {
            let fraction = c / total;
            assert!(
                (fraction - 1.0 / 3.0).abs() < 0.08,
                "{}: fraction {fraction}",
                s.name
            );
        }
    }

    #[test]
    fn underloaded_worker_pool_leaves_idle_cpu() {
        // One worker with long DB waits cannot saturate the CPU.
        let mut sim = Sim::new(SimConfig::default());
        let site = Site {
            name: "tiny".into(),
            workers: 1,
            active: 1,
            cpu_per_request: Nanos::from_millis(5),
            db_wait: Nanos::from_millis(95),
            jitter: 0.0,
            seed: 3,
        }
        .spawn(&mut sim);
        sim.run_until(Nanos::from_secs(10));
        // 5ms CPU per 100ms round trip → ~10 req/s, ~95% idle.
        let rps = site.completed() as f64 / 10.0;
        assert!((rps - 10.0).abs() < 1.0, "got {rps}");
        assert!(sim.idle_time() > Nanos::from_secs(9));
    }

    #[test]
    fn request_costs_are_pure_functions_of_the_spec() {
        // The stream-splitting rule: request k's CPU and DB costs for a
        // site seeded s are stateless indexed draws. Interleaving any
        // number of draws for other sites (the old shared-SmallRng
        // design's failure mode) cannot perturb them.
        let cost = |seed: u64, k: u64| (stream(seed, STREAM_CPU, k), stream(seed, STREAM_DB, k));
        let alone: Vec<_> = (0..200).map(|k| cost(31, k)).collect();
        let mut interleaved = Vec::new();
        for k in 0..200 {
            // Another site (different seed) drawing in between.
            let _ = cost(77, k * 3);
            let _ = cost(77, k * 3 + 1);
            interleaved.push(cost(31, k));
        }
        assert_eq!(alone, interleaved);
        // And the jitter factors they induce are within spec bounds.
        for &(c, d) in &alone {
            assert!((0.6..=1.4).contains(&jitter_factor(c, 0.4)));
            assert!((0.6..=1.4).contains(&jitter_factor(d, 0.4)));
        }
    }
}
