//! Trace-driven workloads: replay a recorded burst/sleep schedule.
//!
//! The paper's workloads are synthetic; real deployments would want to
//! evaluate ALPS against recorded application behavior. [`TraceReplay`]
//! replays a sequence of `(cpu_burst, sleep)` segments — the format most
//! CPU-trace tools reduce to — and [`parse_trace`] reads the simple text
//! form (one `burst_us sleep_us` pair per line, `#` comments).

use alps_core::Nanos;
use kernsim::{Behavior, Sim, SimCtl, Step};

use crate::workload::{LatencyProbe, Tenant, Workload};

/// One segment of recorded behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// CPU to consume.
    pub burst: Nanos,
    /// Wait-channel time afterwards (zero = go straight to the next burst).
    pub sleep: Nanos,
}

/// What the replay does when the trace is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnEnd {
    /// Start over from the first segment.
    Loop,
    /// Exit the process.
    Exit,
}

/// A behavior that replays a trace of CPU bursts and sleeps.
#[derive(Debug, Clone)]
pub struct TraceReplay {
    segments: Vec<Segment>,
    on_end: OnEnd,
    at: usize,
    mid_segment: bool,
    probe: Option<LatencyProbe>,
    pass_started: Option<Nanos>,
}

impl TraceReplay {
    /// Replay the given segments. Zero-length bursts/sleeps are skipped.
    pub fn new(segments: Vec<Segment>, on_end: OnEnd) -> Self {
        assert!(!segments.is_empty(), "empty trace");
        TraceReplay {
            segments,
            on_end,
            at: 0,
            mid_segment: false,
            probe: None,
            pass_started: None,
        }
    }

    /// Record each completed pass on `probe`: latency is the pass's
    /// wall-clock time, service demand its total CPU — so the probe's
    /// stretch reports the slowdown the scheduler inflicted.
    pub fn with_probe(mut self, probe: LatencyProbe) -> Self {
        self.probe = Some(probe);
        self
    }

    /// Total CPU one pass of the trace consumes.
    pub fn total_cpu(&self) -> Nanos {
        self.segments.iter().map(|s| s.burst).sum()
    }
}

impl Behavior for TraceReplay {
    fn on_ready(&mut self, ctl: &mut SimCtl<'_>) -> Step {
        loop {
            if self.at >= self.segments.len() {
                if let (Some(probe), Some(start)) = (&self.probe, self.pass_started.take()) {
                    let demand = self
                        .segments
                        .iter()
                        .map(|s| s.burst + s.sleep)
                        .sum::<Nanos>();
                    probe.record((ctl.now() - start).as_nanos(), demand.as_nanos());
                }
                match self.on_end {
                    OnEnd::Loop => self.at = 0,
                    OnEnd::Exit => return Step::Exit,
                }
            }
            if self.at == 0 && !self.mid_segment && self.pass_started.is_none() {
                self.pass_started = Some(ctl.now());
            }
            let seg = self.segments[self.at];
            if !self.mid_segment {
                self.mid_segment = true;
                if seg.burst > Nanos::ZERO {
                    return Step::Compute(seg.burst);
                }
            }
            // Burst done (or empty): sleep, then advance.
            self.mid_segment = false;
            self.at += 1;
            if seg.sleep > Nanos::ZERO {
                return Step::Sleep(seg.sleep);
            }
        }
    }

    fn name(&self) -> &str {
        "trace-replay"
    }
}

/// A trace-driven tenant as a [`Workload`] spec: `instances` copies of
/// the same trace, each recording completed passes on the shared probe.
#[derive(Debug, Clone)]
pub struct Replay {
    /// Tenant name.
    pub name: String,
    /// The trace every instance replays.
    pub segments: Vec<Segment>,
    /// What happens when the trace ends.
    pub on_end: OnEnd,
    /// Number of replaying processes.
    pub instances: usize,
}

impl Workload for Replay {
    fn spawn(&self, sim: &mut Sim) -> Tenant {
        assert!(self.instances >= 1, "a replay tenant needs instances");
        let probe = LatencyProbe::new();
        let members = (0..self.instances)
            .map(|i| {
                let replay =
                    TraceReplay::new(self.segments.clone(), self.on_end).with_probe(probe.clone());
                sim.spawn(format!("{}-r{i}", self.name), Box::new(replay))
            })
            .collect();
        Tenant::new(self.name.clone(), members, Vec::new(), probe)
    }
}

/// Parse the text trace format: one `burst_us sleep_us` pair per line;
/// blank lines and `#` comments ignored.
pub fn parse_trace(text: &str) -> Result<Vec<Segment>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_ascii_whitespace();
        let burst: u64 = parts
            .next()
            .ok_or_else(|| format!("line {}: missing burst", lineno + 1))?
            .parse()
            .map_err(|e| format!("line {}: bad burst: {e}", lineno + 1))?;
        let sleep: u64 = parts
            .next()
            .ok_or_else(|| format!("line {}: missing sleep", lineno + 1))?
            .parse()
            .map_err(|e| format!("line {}: bad sleep: {e}", lineno + 1))?;
        if parts.next().is_some() {
            return Err(format!("line {}: trailing fields", lineno + 1));
        }
        out.push(Segment {
            burst: Nanos::from_micros(burst),
            sleep: Nanos::from_micros(sleep),
        });
    }
    if out.is_empty() {
        return Err("trace has no segments".into());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernsim::{Sim, SimConfig};

    #[test]
    fn parse_valid_trace() {
        let segs = parse_trace("# demo\n1000 2000\n\n500 0 # tail\n").unwrap();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].burst, Nanos::from_micros(1000));
        assert_eq!(segs[0].sleep, Nanos::from_micros(2000));
        assert_eq!(segs[1].sleep, Nanos::ZERO);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_trace("").is_err());
        assert!(parse_trace("# only comments\n").is_err());
        assert!(parse_trace("12").is_err());
        assert!(parse_trace("a b").is_err());
        assert!(parse_trace("1 2 3").is_err());
    }

    #[test]
    fn replay_consumes_exactly_the_trace_once() {
        let segs = parse_trace("10000 5000\n20000 0\n5000 1000\n").unwrap();
        let replay = TraceReplay::new(segs.clone(), OnEnd::Exit);
        let want_cpu = replay.total_cpu();
        let mut sim = Sim::new(SimConfig::default());
        let p = sim.spawn("replay", Box::new(replay));
        sim.run_until(Nanos::from_secs(1));
        assert!(sim.proc(p).unwrap().is_exited());
        assert_eq!(sim.proc(p).unwrap().cputime(), want_cpu);
    }

    #[test]
    fn looping_replay_repeats_with_duty_cycle() {
        // 10ms CPU + 10ms sleep looped: ~50% duty cycle when alone.
        let segs = vec![Segment {
            burst: Nanos::from_millis(10),
            sleep: Nanos::from_millis(10),
        }];
        let mut sim = Sim::new(SimConfig::default());
        let p = sim.spawn("loop", Box::new(TraceReplay::new(segs, OnEnd::Loop)));
        sim.run_until(Nanos::from_secs(4));
        let frac = sim.proc(p).unwrap().cputime().as_secs_f64() / 4.0;
        assert!((frac - 0.5).abs() < 0.02, "duty {frac}");
    }

    #[test]
    fn replay_tenant_records_pass_stretch() {
        // Alone, each 20ms pass (10ms burst + 10ms sleep) completes on
        // schedule: stretch ~1.
        let mut sim = Sim::new(SimConfig::default());
        let t = Replay {
            name: "trace".into(),
            segments: vec![Segment {
                burst: Nanos::from_millis(10),
                sleep: Nanos::from_millis(10),
            }],
            on_end: OnEnd::Loop,
            instances: 1,
        }
        .spawn(&mut sim);
        sim.run_until(Nanos::from_secs(4));
        assert!(t.completed() >= 190, "got {}", t.completed());
        let s = t.latency_summary(0);
        assert!(
            (s.mean_stretch - 1.0).abs() < 0.05,
            "uncontended stretch ~1, got {}",
            s.mean_stretch
        );
    }

    #[test]
    fn replay_under_alps_is_bounded_by_its_share() {
        // A greedy trace (all burst, no sleep) next to a spinner at 1:1.
        let segs = vec![Segment {
            burst: Nanos::from_millis(50),
            sleep: Nanos::from_micros(100),
        }];
        let mut sim = Sim::new(SimConfig::default());
        let r = sim.spawn("replay", Box::new(TraceReplay::new(segs, OnEnd::Loop)));
        let s = sim.spawn("spin", Box::new(kernsim::ComputeBound));
        alps_sim_spawn(&mut sim, &[(r, 1), (s, 1)]);
        sim.run_until(Nanos::from_secs(20));
        let fr = sim.proc(r).unwrap().cputime().as_secs_f64() / 20.0;
        assert!(fr < 0.56, "replay got {fr} of the CPU at equal shares");
    }

    /// Local shim so `workloads` does not depend on `alps-sim` (which
    /// depends on us): a minimal ALPS loop driven straight from a test.
    fn alps_sim_spawn(sim: &mut Sim, procs: &[(kernsim::Pid, u64)]) {
        use alps_core::{AlpsConfig, AlpsScheduler, Observation};
        struct MiniAlps {
            sched: AlpsScheduler,
            map: Vec<(alps_core::ProcId, kernsim::Pid)>,
            armed: bool,
        }
        impl Behavior for MiniAlps {
            fn on_ready(&mut self, ctl: &mut SimCtl<'_>) -> Step {
                if !self.armed {
                    self.armed = true;
                    for &(_, pid) in &self.map {
                        ctl.sigstop(pid);
                    }
                    ctl.set_interval_timer(Nanos::from_millis(10));
                    return Step::AwaitTimer;
                }
                let due = self.sched.begin_quantum();
                let obs: Vec<_> = due
                    .iter()
                    .filter_map(|&id| {
                        self.map.iter().find(|(i, _)| *i == id).map(|&(_, pid)| {
                            (
                                id,
                                Observation {
                                    total_cpu: ctl.cputime(pid),
                                    blocked: ctl.is_blocked(pid),
                                },
                            )
                        })
                    })
                    .collect();
                let out = self.sched.complete_quantum(&obs, ctl.now());
                for t in &out.transitions {
                    if let Some(&(_, pid)) = self.map.iter().find(|(i, _)| *i == t.proc_id()) {
                        match t {
                            alps_core::Transition::Resume(_) => ctl.sigcont(pid),
                            alps_core::Transition::Suspend(_) => ctl.sigstop(pid),
                        }
                    }
                }
                Step::AwaitTimer
            }
        }
        let mut sched = AlpsScheduler::new(AlpsConfig::new(Nanos::from_millis(10)));
        let map = procs
            .iter()
            .map(|&(pid, share)| (sched.add_process(share, Nanos::ZERO), pid))
            .collect();
        sim.spawn(
            "mini-alps",
            Box::new(MiniAlps {
                sched,
                map,
                armed: false,
            }),
        );
    }
}
