//! Fork-join batch workloads — the paper's introductory scientific
//! application ("multiple processes, each of which computes over some
//! space … CPU time … allocated proportionally to the size of that
//! space").
//!
//! The point of work-proportional shares in a fork-join stage is
//! *co-completion*: if every worker's share matches its work, all workers
//! finish together and the join never waits on a straggler. Under an
//! equal-share kernel policy, small regions finish early and idle (or
//! steal CPU needed elsewhere) while the largest region drags the join.

use alps_core::Nanos;
use kernsim::{Behavior, Pid, Sim, SimCtl, Step};

use crate::workload::{LatencyProbe, Tenant, Workload};
use crate::FiniteJob;

/// One worker of a fork-join stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchJob {
    /// Total CPU the worker needs (e.g. proportional to its region size).
    pub work: Nanos,
}

/// A spawned batch stage.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Worker pids, in job order.
    pub pids: Vec<Pid>,
    /// The jobs, in the same order.
    pub jobs: Vec<BatchJob>,
}

impl Batch {
    /// Completion wall-clock time of each worker (`None` while running).
    pub fn completion_times(&self, sim: &Sim) -> Vec<Option<Nanos>> {
        self.pids
            .iter()
            .map(|&p| {
                sim.proc(p)
                    .unwrap()
                    .is_exited()
                    .then(|| sim.proc(p).unwrap().cputime())
            })
            .collect()
    }

    /// Whether every worker has exited.
    pub fn all_done(&self, sim: &Sim) -> bool {
        self.pids.iter().all(|&p| sim.proc(p).unwrap().is_exited())
    }
}

/// A fork-join stage as a [`Workload`] spec: one worker per job, each
/// recording its completion latency (spawn to exit) against its work as
/// the service demand — so a stage's probe summary directly reports
/// stretch (1.0 = ran as if alone; the co-completion ideal keeps every
/// worker's stretch equal).
#[derive(Debug, Clone)]
pub struct BatchStage {
    /// Stage name.
    pub name: String,
    /// One worker per job.
    pub jobs: Vec<BatchJob>,
}

impl Workload for BatchStage {
    fn spawn(&self, sim: &mut Sim) -> Tenant {
        assert!(!self.jobs.is_empty(), "a stage needs jobs");
        let probe = LatencyProbe::new();
        let members = self
            .jobs
            .iter()
            .enumerate()
            .map(|(i, job)| {
                sim.spawn(
                    format!("{}-j{i}", self.name),
                    Box::new(ProbedJob {
                        work: job.work,
                        probe: probe.clone(),
                        started: None,
                    }),
                )
            })
            .collect();
        Tenant::new(self.name.clone(), members, Vec::new(), probe)
    }
}

/// A [`FiniteJob`] that records its wall-clock completion latency.
struct ProbedJob {
    work: Nanos,
    probe: LatencyProbe,
    started: Option<Nanos>,
}

impl Behavior for ProbedJob {
    fn on_ready(&mut self, ctl: &mut SimCtl<'_>) -> Step {
        match self.started {
            None => {
                self.started = Some(ctl.now());
                Step::Compute(self.work)
            }
            Some(started) => {
                self.probe
                    .record((ctl.now() - started).as_nanos(), self.work.as_nanos());
                Step::Exit
            }
        }
    }

    fn name(&self) -> &str {
        "batch-job"
    }
}

/// Spawn one worker per job.
pub fn spawn_batch(sim: &mut Sim, name: &str, jobs: &[BatchJob]) -> Batch {
    let pids = jobs
        .iter()
        .enumerate()
        .map(|(i, job)| sim.spawn(format!("{name}-j{i}"), Box::new(FiniteJob::new(job.work))))
        .collect();
    Batch {
        pids,
        jobs: jobs.to_vec(),
    }
}

/// Run the simulation until the whole batch has exited (bounded by `cap`),
/// returning each worker's completion wall-clock time.
pub fn run_to_completion(sim: &mut Sim, batch: &Batch, cap: Nanos) -> Vec<Nanos> {
    run_pids_to_completion(sim, &batch.pids, cap)
}

/// [`run_to_completion`] over a bare pid list — e.g. a
/// [`Tenant::members`] slice from a spawned [`BatchStage`].
pub fn run_pids_to_completion(sim: &mut Sim, pids: &[Pid], cap: Nanos) -> Vec<Nanos> {
    let mut done_at: Vec<Option<Nanos>> = vec![None; pids.len()];
    while sim.now() < cap {
        let next = sim.now() + Nanos::from_millis(10);
        sim.run_until(next.min(cap));
        for (i, &p) in pids.iter().enumerate() {
            if done_at[i].is_none() && sim.proc(p).unwrap().is_exited() {
                done_at[i] = Some(sim.now());
            }
        }
        if done_at.iter().all(|d| d.is_some()) {
            break;
        }
    }
    done_at.into_iter().map(|d| d.unwrap_or(cap)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernsim::SimConfig;

    #[test]
    fn batch_workers_run_and_exit() {
        let mut sim = Sim::new(SimConfig::default());
        let jobs: Vec<BatchJob> = [100u64, 200, 300]
            .iter()
            .map(|&ms| BatchJob {
                work: Nanos::from_millis(ms),
            })
            .collect();
        let batch = spawn_batch(&mut sim, "stage", &jobs);
        let done = run_to_completion(&mut sim, &batch, Nanos::from_secs(5));
        assert!(batch.all_done(&sim));
        // Total work 600ms on one CPU: the last completion is ~600ms.
        let last = done.iter().max().unwrap();
        assert!((last.as_millis_f64() - 600.0).abs() < 50.0, "{last}");
        // Each consumed exactly its work.
        for (pid, job) in batch.pids.iter().zip(&jobs) {
            assert_eq!(sim.proc(*pid).unwrap().cputime(), job.work);
        }
    }

    #[test]
    fn batch_stage_records_stretch_per_worker() {
        let mut sim = Sim::new(SimConfig::default());
        let stage = BatchStage {
            name: "mesh".into(),
            jobs: [100u64, 200, 300]
                .iter()
                .map(|&ms| BatchJob {
                    work: Nanos::from_millis(ms),
                })
                .collect(),
        };
        let t = stage.spawn(&mut sim);
        assert_eq!(t.members.len(), 3);
        sim.run_until(Nanos::from_secs(5));
        assert_eq!(t.completed(), 3);
        let s = t.latency_summary(0);
        // Three jobs sharing one CPU: each waits on the others, so every
        // stretch is > 1 and the max is bounded by total/min work = 6.
        assert!(s.mean_stretch > 1.0, "got {}", s.mean_stretch);
        assert!(s.max_stretch <= 6.5, "got {}", s.max_stretch);
    }

    #[test]
    fn completion_times_query() {
        let mut sim = Sim::new(SimConfig::default());
        let jobs = vec![
            BatchJob {
                work: Nanos::from_millis(50),
            },
            BatchJob {
                work: Nanos::from_secs(10),
            },
        ];
        let batch = spawn_batch(&mut sim, "s", &jobs);
        sim.run_until(Nanos::from_secs(1));
        let times = batch.completion_times(&sim);
        assert!(times[0].is_some(), "small job done");
        assert!(times[1].is_none(), "big job still running");
        assert!(!batch.all_done(&sim));
    }
}
