//! Fork-join batch workloads — the paper's introductory scientific
//! application ("multiple processes, each of which computes over some
//! space … CPU time … allocated proportionally to the size of that
//! space").
//!
//! The point of work-proportional shares in a fork-join stage is
//! *co-completion*: if every worker's share matches its work, all workers
//! finish together and the join never waits on a straggler. Under an
//! equal-share kernel policy, small regions finish early and idle (or
//! steal CPU needed elsewhere) while the largest region drags the join.

use alps_core::Nanos;
use kernsim::{Pid, Sim};

use crate::FiniteJob;

/// One worker of a fork-join stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchJob {
    /// Total CPU the worker needs (e.g. proportional to its region size).
    pub work: Nanos,
}

/// A spawned batch stage.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Worker pids, in job order.
    pub pids: Vec<Pid>,
    /// The jobs, in the same order.
    pub jobs: Vec<BatchJob>,
}

impl Batch {
    /// Completion wall-clock time of each worker (`None` while running).
    pub fn completion_times(&self, sim: &Sim) -> Vec<Option<Nanos>> {
        self.pids
            .iter()
            .map(|&p| {
                sim.proc(p)
                    .unwrap()
                    .is_exited()
                    .then(|| sim.proc(p).unwrap().cputime())
            })
            .collect()
    }

    /// Whether every worker has exited.
    pub fn all_done(&self, sim: &Sim) -> bool {
        self.pids.iter().all(|&p| sim.proc(p).unwrap().is_exited())
    }
}

/// Spawn one worker per job.
pub fn spawn_batch(sim: &mut Sim, name: &str, jobs: &[BatchJob]) -> Batch {
    let pids = jobs
        .iter()
        .enumerate()
        .map(|(i, job)| sim.spawn(format!("{name}-j{i}"), Box::new(FiniteJob::new(job.work))))
        .collect();
    Batch {
        pids,
        jobs: jobs.to_vec(),
    }
}

/// Run the simulation until the whole batch has exited (bounded by `cap`),
/// returning each worker's completion wall-clock time.
pub fn run_to_completion(sim: &mut Sim, batch: &Batch, cap: Nanos) -> Vec<Nanos> {
    let mut done_at: Vec<Option<Nanos>> = vec![None; batch.pids.len()];
    while sim.now() < cap {
        let next = sim.now() + Nanos::from_millis(10);
        sim.run_until(next.min(cap));
        for (i, &p) in batch.pids.iter().enumerate() {
            if done_at[i].is_none() && sim.proc(p).unwrap().is_exited() {
                done_at[i] = Some(sim.now());
            }
        }
        if done_at.iter().all(|d| d.is_some()) {
            break;
        }
    }
    done_at.into_iter().map(|d| d.unwrap_or(cap)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernsim::SimConfig;

    #[test]
    fn batch_workers_run_and_exit() {
        let mut sim = Sim::new(SimConfig::default());
        let jobs: Vec<BatchJob> = [100u64, 200, 300]
            .iter()
            .map(|&ms| BatchJob {
                work: Nanos::from_millis(ms),
            })
            .collect();
        let batch = spawn_batch(&mut sim, "stage", &jobs);
        let done = run_to_completion(&mut sim, &batch, Nanos::from_secs(5));
        assert!(batch.all_done(&sim));
        // Total work 600ms on one CPU: the last completion is ~600ms.
        let last = done.iter().max().unwrap();
        assert!((last.as_millis_f64() - 600.0).abs() < 50.0, "{last}");
        // Each consumed exactly its work.
        for (pid, job) in batch.pids.iter().zip(&jobs) {
            assert_eq!(sim.proc(*pid).unwrap().cputime(), job.work);
        }
    }

    #[test]
    fn completion_times_query() {
        let mut sim = Sim::new(SimConfig::default());
        let jobs = vec![
            BatchJob {
                work: Nanos::from_millis(50),
            },
            BatchJob {
                work: Nanos::from_secs(10),
            },
        ];
        let batch = spawn_batch(&mut sim, "s", &jobs);
        sim.run_until(Nanos::from_secs(1));
        let times = batch.completion_times(&sim);
        assert!(times[0].is_some(), "small job done");
        assert!(times[1].is_none(), "big job still running");
        assert!(!batch.all_done(&sim));
    }
}
