//! # workloads — workload generators for the ALPS evaluation
//!
//! Everything the paper runs *under* ALPS:
//!
//! * [`shares`] — the Table-2 share distributions (linear/equal/skewed for
//!   5/10/20 processes);
//! * [`behavior`] — synthetic process behaviors beyond `kernsim`'s
//!   built-ins (randomized on/off I/O, finite batch jobs);
//! * [`webserver`] — the §5 shared-web-server model: three saturated
//!   bulletin-board sites whose worker pools compete for the CPU;
//! * [`batch`] — fork-join stages with heterogeneous work (the intro's
//!   scientific application);
//! * [`replay`] — trace-driven workloads (replay recorded burst/sleep
//!   schedules).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod behavior;
pub mod replay;
pub mod shares;
pub mod webserver;

pub use behavior::{FiniteJob, RandomOnOff};
pub use replay::{parse_trace, OnEnd, Segment, TraceReplay};
pub use shares::ShareModel;
pub use webserver::{spawn_site, Site, SiteSpec};
