//! # workloads — workload generators for the ALPS evaluation
//!
//! Everything the paper runs *under* ALPS, behind one interface: a
//! [`Workload`] spec spawns into a simulation and hands back a uniform
//! [`Tenant`] handle (member pids for membership scans, auxiliary pids
//! ALPS must never signal, and a [`LatencyProbe`] feeding
//! per-request latency into `alps_metrics`):
//!
//! * [`shares`] — the Table-2 share distributions (linear/equal/skewed for
//!   5/10/20 processes);
//! * [`behavior`] — synthetic process behaviors beyond `kernsim`'s
//!   built-ins (randomized on/off I/O, finite batch jobs);
//! * [`webserver`] — the §5 shared-web-server model: three saturated
//!   bulletin-board sites whose worker pools compete for the CPU;
//! * [`batch`] — fork-join stages with heterogeneous work (the intro's
//!   scientific application);
//! * [`replay`] — trace-driven workloads (replay recorded burst/sleep
//!   schedules);
//! * [`traffic`] — open-loop arrival processes (Poisson, flash crowds)
//!   whose offered load is independent of scheduling — the tail-latency
//!   and SLO experiments' traffic engine.
//!
//! All workload randomness follows the stream-splitting rule documented
//! in [`workload`]: stateless indexed draws, never shared-RNG advance
//! order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod behavior;
pub mod replay;
pub mod shares;
pub mod traffic;
pub mod webserver;
pub mod workload;

pub use batch::BatchStage;
pub use behavior::{FiniteJob, OnOffPool, RandomOnOff};
pub use replay::{parse_trace, OnEnd, Replay, Segment, TraceReplay};
pub use shares::ShareModel;
pub use traffic::{Arrivals, BestEffort, OpenLoop, STREAM_ARRIVAL, STREAM_CPU, STREAM_DB};
pub use webserver::Site;
pub use workload::{jitter_factor, splitmix64, stream, unit_f64, LatencyProbe, Tenant, Workload};
