//! Open-loop traffic: arrival processes decoupled from service capacity.
//!
//! The §5 web model is *closed-loop* — a fixed worker pool always has a
//! next request, so offered load adapts to whatever the scheduler grants.
//! Closed loops cannot exhibit the queueing collapse that makes tail
//! latency interesting: for that, arrivals must keep coming whether or
//! not the tenant is being scheduled. [`OpenLoop`] models exactly that —
//! an arrival process ([`Arrivals`]: periodic, Poisson, or flash-crowd)
//! enqueues requests on its own clock while a fixed server pool drains
//! the queue; per-request latency (queue wait + service, including every
//! SIGSTOP the scheduler inflicts) lands in the tenant's
//! [`LatencyProbe`].
//!
//! Two determinism rules keep open-loop traffic byte-reproducible:
//!
//! 1. **The arrival generator is an aux process.** It lives in
//!    [`Tenant::aux`], not [`Tenant::members`], so ALPS never signals
//!    it; it sleeps between arrivals and consumes no CPU, so arrival
//!    times are a pure function of the spec — independent of shares,
//!    controller activity, and co-tenants.
//! 2. **Every random draw is an indexed stream** (the crate's
//!    stream-splitting rule): request *k*'s interarrival gap and service
//!    cost come from `stream(seed, STREAM_*, k)`, so traces are
//!    identical across thread counts and seed orders under `alps-sweep`.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use alps_core::Nanos;
use kernsim::{Behavior, Sim, SimCtl, Step};
use serde::{Deserialize, Serialize};

use crate::workload::{jitter_factor, stream, unit_f64, LatencyProbe, Tenant, Workload};

/// Stream id for interarrival gaps.
pub const STREAM_ARRIVAL: u64 = 0x41;
/// Stream id for request CPU costs.
pub const STREAM_CPU: u64 = 0x42;
/// Stream id for request blocking (I/O) costs.
pub const STREAM_DB: u64 = 0x43;

/// An open-loop arrival process. All variants are indexed: request *k*'s
/// gap is a pure function of `(seed, k)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Arrivals {
    /// Fixed interarrival time.
    Periodic {
        /// Gap between consecutive arrivals.
        interarrival: Nanos,
    },
    /// Poisson process: exponentially distributed gaps.
    Poisson {
        /// Mean interarrival time (1/λ).
        mean_interarrival: Nanos,
    },
    /// Flash crowd: a Poisson base rate with periodic burst episodes at
    /// a higher rate, cycling by request index.
    FlashCrowd {
        /// Mean gap outside bursts.
        base: Nanos,
        /// Mean gap inside bursts (smaller = more intense).
        burst: Nanos,
        /// Requests per cycle at the base rate.
        normal_len: u64,
        /// Requests per cycle at the burst rate.
        burst_len: u64,
    },
}

impl Arrivals {
    /// The gap after arrival `k`, for a tenant seeded `seed`.
    pub fn gap(&self, seed: u64, k: u64) -> Nanos {
        match *self {
            Arrivals::Periodic { interarrival } => interarrival,
            Arrivals::Poisson { mean_interarrival } => exp_gap(mean_interarrival, seed, k),
            Arrivals::FlashCrowd {
                base,
                burst,
                normal_len,
                burst_len,
            } => {
                let cycle = (normal_len + burst_len).max(1);
                let mean = if k % cycle < normal_len { base } else { burst };
                exp_gap(mean, seed, k)
            }
        }
    }

    /// The first `n` arrival times (cumulative gaps from t=0, with an
    /// arrival at t=0) — the trace fingerprint determinism tests compare.
    pub fn trace(&self, seed: u64, n: usize) -> Vec<Nanos> {
        let mut out = Vec::with_capacity(n);
        let mut t = Nanos::ZERO;
        for k in 0..n as u64 {
            out.push(t);
            t += self.gap(seed, k);
        }
        out
    }
}

/// Exponential gap with the given mean, from indexed stream draw `k`.
fn exp_gap(mean: Nanos, seed: u64, k: u64) -> Nanos {
    // u in (0, 1]: complement of [0,1) so ln never sees zero.
    let u = 1.0 - unit_f64(stream(seed, STREAM_ARRIVAL, k));
    let gap = -(u.ln()) * mean.as_nanos() as f64;
    // Clamp to [1us, 100x mean]: keeps event counts bounded and gaps
    // representable without changing the distribution materially.
    let capped = gap.min(mean.as_nanos() as f64 * 100.0).max(1_000.0);
    Nanos(capped as u64)
}

/// One enqueued request.
#[derive(Debug, Clone, Copy)]
struct Request {
    arrived: Nanos,
    cpu: Nanos,
}

type Queue = Rc<RefCell<VecDeque<Request>>>;

/// An open-loop tenant: an arrival process feeding a bounded queue
/// drained by a pool of server processes.
#[derive(Debug, Clone)]
pub struct OpenLoop {
    /// Tenant name.
    pub name: String,
    /// The arrival process.
    pub arrivals: Arrivals,
    /// Server processes draining the queue (the ALPS members).
    pub servers: usize,
    /// Mean CPU cost per request.
    pub cpu_per_request: Nanos,
    /// Multiplicative service-cost jitter in `[1-j, 1+j]`.
    pub jitter: f64,
    /// Queue slots; arrivals beyond this are dropped (and counted on the
    /// probe).
    pub queue_cap: usize,
    /// Idle-server re-poll interval.
    pub poll: Nanos,
    /// Tenant seed (arrival and cost streams split from it).
    pub seed: u64,
    /// Stop generating after this many arrivals (`None` = unbounded).
    pub total_requests: Option<u64>,
}

impl Default for OpenLoop {
    fn default() -> Self {
        OpenLoop {
            name: "openloop".into(),
            arrivals: Arrivals::Poisson {
                mean_interarrival: Nanos::from_millis(20),
            },
            servers: 4,
            cpu_per_request: Nanos::from_millis(10),
            jitter: 0.3,
            queue_cap: 512,
            poll: Nanos::from_millis(1),
            seed: 1,
            total_requests: None,
        }
    }
}

impl Workload for OpenLoop {
    fn spawn(&self, sim: &mut Sim) -> Tenant {
        assert!(self.servers >= 1, "an open-loop tenant needs servers");
        assert!(self.queue_cap >= 1, "queue_cap must be at least 1");
        let probe = LatencyProbe::new();
        let queue: Queue = Rc::new(RefCell::new(VecDeque::new()));
        let gen = ArrivalGen {
            arrivals: self.arrivals,
            seed: self.seed,
            k: 0,
            limit: self.total_requests,
            cpu: self.cpu_per_request,
            jitter: self.jitter,
            cap: self.queue_cap,
            queue: Rc::clone(&queue),
            probe: probe.clone(),
        };
        let aux = vec![sim.spawn(format!("{}-arrivals", self.name), Box::new(gen))];
        let members = (0..self.servers)
            .map(|i| {
                let server = OpenServer {
                    queue: Rc::clone(&queue),
                    probe: probe.clone(),
                    poll: self.poll,
                    current: None,
                };
                sim.spawn(format!("{}-srv{i}", self.name), Box::new(server))
            })
            .collect();
        Tenant::new(self.name.clone(), members, aux, probe)
    }
}

/// The arrival process: pushes a request, sleeps the indexed gap,
/// repeats. Sleep-only — it must never be an ALPS member (see module
/// docs).
struct ArrivalGen {
    arrivals: Arrivals,
    seed: u64,
    k: u64,
    limit: Option<u64>,
    cpu: Nanos,
    jitter: f64,
    cap: usize,
    queue: Queue,
    probe: LatencyProbe,
}

impl Behavior for ArrivalGen {
    fn on_ready(&mut self, ctl: &mut SimCtl<'_>) -> Step {
        if let Some(limit) = self.limit {
            if self.k >= limit {
                return Step::Exit;
            }
        }
        let k = self.k;
        self.k += 1;
        let cost = self
            .cpu
            .mul_f64(jitter_factor(stream(self.seed, STREAM_CPU, k), self.jitter))
            .max(Nanos::from_micros(10));
        let mut q = self.queue.borrow_mut();
        if q.len() >= self.cap {
            self.probe.record_drop();
        } else {
            q.push_back(Request {
                arrived: ctl.now(),
                cpu: cost,
            });
        }
        drop(q);
        Step::Sleep(self.arrivals.gap(self.seed, k).max(Nanos(1)))
    }

    fn name(&self) -> &str {
        "openloop-arrivals"
    }
}

/// A server: pops a request, computes its cost, records its latency,
/// repeats; polls when the queue is empty.
struct OpenServer {
    queue: Queue,
    probe: LatencyProbe,
    poll: Nanos,
    current: Option<Request>,
}

impl Behavior for OpenServer {
    fn on_ready(&mut self, ctl: &mut SimCtl<'_>) -> Step {
        if let Some(req) = self.current.take() {
            let latency = (ctl.now() - req.arrived).as_nanos();
            self.probe.record(latency, req.cpu.as_nanos());
        }
        let next = self.queue.borrow_mut().pop_front();
        match next {
            Some(req) => {
                let cost = req.cpu;
                self.current = Some(req);
                Step::Compute(cost)
            }
            None => Step::Sleep(self.poll),
        }
    }

    fn name(&self) -> &str {
        "openloop-server"
    }
}

/// A best-effort tenant: `procs` compute-bound spinners and nothing
/// else. The overload experiments use one to keep the machine saturated
/// while latency-sensitive tenants' SLOs stay feasible.
#[derive(Debug, Clone)]
pub struct BestEffort {
    /// Tenant name.
    pub name: String,
    /// Number of compute-bound processes.
    pub procs: usize,
}

impl Workload for BestEffort {
    fn spawn(&self, sim: &mut Sim) -> Tenant {
        let members = (0..self.procs)
            .map(|i| {
                sim.spawn(
                    format!("{}-spin{i}", self.name),
                    Box::new(kernsim::ComputeBound),
                )
            })
            .collect();
        Tenant::new(self.name.clone(), members, Vec::new(), LatencyProbe::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernsim::SimConfig;

    #[test]
    fn arrival_traces_are_pure_functions_of_the_spec() {
        let a = Arrivals::Poisson {
            mean_interarrival: Nanos::from_millis(10),
        };
        assert_eq!(a.trace(42, 100), a.trace(42, 100));
        assert_ne!(a.trace(42, 100), a.trace(43, 100));
        // Mean gap tracks the spec within sampling noise.
        let t = a.trace(42, 2_000);
        let mean = t.last().unwrap().as_nanos() as f64 / 1_999.0;
        let want = Nanos::from_millis(10).as_nanos() as f64;
        assert!((mean - want).abs() / want < 0.15, "mean gap {mean}");
    }

    #[test]
    fn flash_crowd_bursts_are_denser() {
        let a = Arrivals::FlashCrowd {
            base: Nanos::from_millis(20),
            burst: Nanos::from_millis(2),
            normal_len: 50,
            burst_len: 50,
        };
        let gaps: Vec<u64> = (0..100).map(|k| a.gap(5, k).as_nanos()).collect();
        let normal: u64 = gaps[..50].iter().sum();
        let burst: u64 = gaps[50..].iter().sum();
        assert!(
            normal > burst * 3,
            "base phase ({normal}) much slower than burst ({burst})"
        );
    }

    #[test]
    fn underloaded_open_loop_completes_all_arrivals_quickly() {
        // 10ms mean service vs 50ms mean interarrival: ~20% utilization,
        // so latency ~ service and nothing is dropped.
        let mut sim = Sim::new(SimConfig::default());
        let t = OpenLoop {
            name: "light".into(),
            arrivals: Arrivals::Poisson {
                mean_interarrival: Nanos::from_millis(50),
            },
            servers: 2,
            cpu_per_request: Nanos::from_millis(10),
            jitter: 0.2,
            seed: 11,
            ..OpenLoop::default()
        }
        .spawn(&mut sim);
        sim.run_until(Nanos::from_secs(20));
        let done = t.completed();
        assert!(done > 300, "~400 arrivals in 20s, got {done}");
        assert_eq!(t.probe().dropped(), 0);
        let s = t.latency_summary(10);
        assert!(
            s.p95_ms < 40.0,
            "lightly loaded p95 near service time, got {}",
            s.p95_ms
        );
        assert!(s.mean_stretch < 3.0, "stretch ~1, got {}", s.mean_stretch);
    }

    #[test]
    fn overloaded_open_loop_drops_and_stretches() {
        // Offered load 2x capacity with a tiny queue: drops happen and
        // survivors queue.
        let mut sim = Sim::new(SimConfig::default());
        let t = OpenLoop {
            name: "heavy".into(),
            arrivals: Arrivals::Periodic {
                interarrival: Nanos::from_millis(5),
            },
            servers: 1,
            cpu_per_request: Nanos::from_millis(10),
            jitter: 0.0,
            queue_cap: 16,
            seed: 3,
            ..OpenLoop::default()
        }
        .spawn(&mut sim);
        sim.run_until(Nanos::from_secs(10));
        assert!(t.probe().dropped() > 100, "got {}", t.probe().dropped());
        let s = t.latency_summary(20);
        assert!(s.p95_ms > 100.0, "queue of 16 x 10ms, got p95 {}", s.p95_ms);
    }

    #[test]
    fn arrivals_are_independent_of_scheduling() {
        // The same spec spawned next to a CPU hog sees identical arrival
        // counts (completions differ; the *offered* trace does not).
        let spec = OpenLoop {
            name: "probe".into(),
            arrivals: Arrivals::Poisson {
                mean_interarrival: Nanos::from_millis(8),
            },
            servers: 1,
            cpu_per_request: Nanos::from_millis(4),
            jitter: 0.1,
            seed: 21,
            total_requests: Some(500),
            ..OpenLoop::default()
        };
        let count_arrivals = |with_hog: bool| {
            let mut sim = Sim::new(SimConfig::default());
            let t = spec.spawn(&mut sim);
            if with_hog {
                BestEffort {
                    name: "hog".into(),
                    procs: 4,
                }
                .spawn(&mut sim);
            }
            // Long enough for the server to drain the backlog even at a
            // 1-in-5 CPU share next to the hog's four spinners.
            sim.run_until(Nanos::from_secs(60));
            t.completed() + t.probe().dropped()
        };
        // All 500 offered requests eventually arrive and get served in
        // both runs — the hog slows service, not arrivals.
        assert_eq!(count_arrivals(false), 500);
        assert_eq!(count_arrivals(true), 500);
    }
}
