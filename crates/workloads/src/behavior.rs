//! Additional synthetic process behaviors beyond the two built into
//! `kernsim` ([`kernsim::ComputeBound`], [`kernsim::ComputeThenSleep`]).

use alps_core::Nanos;
use kernsim::{Behavior, Sim, SimCtl, Step};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::workload::{stream, LatencyProbe, Tenant, Workload};

/// Randomized on/off behavior: computes for a uniformly random burst, then
/// sleeps for a uniformly random interval. Used in robustness tests to
/// exercise ALPS's I/O accounting with irregular blocking patterns (the
/// paper's §3.3 pattern is periodic; real I/O is not).
#[derive(Debug, Clone)]
pub struct RandomOnOff {
    burst_min: Nanos,
    burst_max: Nanos,
    sleep_min: Nanos,
    sleep_max: Nanos,
    rng: SmallRng,
    sleeping_next: bool,
}

impl RandomOnOff {
    /// Construct with burst and sleep ranges and a deterministic seed.
    pub fn new(burst: (Nanos, Nanos), sleep: (Nanos, Nanos), seed: u64) -> Self {
        assert!(
            burst.0 > Nanos::ZERO && burst.1 >= burst.0,
            "bad burst range"
        );
        assert!(
            sleep.0 > Nanos::ZERO && sleep.1 >= sleep.0,
            "bad sleep range"
        );
        RandomOnOff {
            burst_min: burst.0,
            burst_max: burst.1,
            sleep_min: sleep.0,
            sleep_max: sleep.1,
            rng: SmallRng::seed_from_u64(seed),
            sleeping_next: false,
        }
    }

    fn draw(&mut self, lo: Nanos, hi: Nanos) -> Nanos {
        if lo == hi {
            lo
        } else {
            Nanos(self.rng.gen_range(lo.0..=hi.0))
        }
    }
}

impl Behavior for RandomOnOff {
    fn on_ready(&mut self, _ctl: &mut SimCtl<'_>) -> Step {
        if self.sleeping_next {
            self.sleeping_next = false;
            let d = self.draw(self.sleep_min, self.sleep_max);
            Step::Sleep(d)
        } else {
            self.sleeping_next = true;
            let d = self.draw(self.burst_min, self.burst_max);
            Step::Compute(d)
        }
    }

    fn name(&self) -> &str {
        "random-onoff"
    }
}

/// A pool of [`RandomOnOff`] processes as a [`Workload`] spec — the
/// irregular-I/O tenant of the robustness experiments. Each member's RNG
/// is seeded from an indexed stream off the tenant seed (the crate's
/// stream-splitting rule), so pools never share advance order.
#[derive(Debug, Clone)]
pub struct OnOffPool {
    /// Tenant name.
    pub name: String,
    /// Number of on/off processes.
    pub procs: usize,
    /// Burst range (min, max).
    pub burst: (Nanos, Nanos),
    /// Sleep range (min, max).
    pub sleep: (Nanos, Nanos),
    /// Tenant seed.
    pub seed: u64,
}

impl Workload for OnOffPool {
    fn spawn(&self, sim: &mut Sim) -> Tenant {
        assert!(self.procs >= 1, "a pool needs processes");
        let members = (0..self.procs)
            .map(|i| {
                let b = RandomOnOff::new(self.burst, self.sleep, stream(self.seed, 0x4F, i as u64));
                sim.spawn(format!("{}-p{i}", self.name), Box::new(b))
            })
            .collect();
        Tenant::new(self.name.clone(), members, Vec::new(), LatencyProbe::new())
    }
}

/// Computes a fixed total amount of CPU and then exits — models a batch job
/// (e.g. one worker of the scientific application from the paper's intro).
#[derive(Debug, Clone, Copy)]
pub struct FiniteJob {
    /// Total CPU to consume before exiting.
    pub total: Nanos,
    issued: bool,
}

impl FiniteJob {
    /// A job that consumes `total` CPU time and exits.
    pub fn new(total: Nanos) -> Self {
        assert!(total > Nanos::ZERO);
        FiniteJob {
            total,
            issued: false,
        }
    }
}

impl Behavior for FiniteJob {
    fn on_ready(&mut self, _ctl: &mut SimCtl<'_>) -> Step {
        if self.issued {
            Step::Exit
        } else {
            self.issued = true;
            Step::Compute(self.total)
        }
    }

    fn name(&self) -> &str {
        "finite-job"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernsim::{Sim, SimConfig};

    #[test]
    fn random_onoff_alternates_and_is_deterministic() {
        let mk = || {
            let mut sim = Sim::new(SimConfig::default());
            let p = sim.spawn(
                "r",
                Box::new(RandomOnOff::new(
                    (Nanos::from_millis(5), Nanos::from_millis(50)),
                    (Nanos::from_millis(5), Nanos::from_millis(50)),
                    42,
                )),
            );
            sim.run_until(Nanos::from_secs(5));
            sim.proc(p).unwrap().cputime()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a, b, "same seed, same trace");
        // On/off with symmetric ranges uses roughly half the CPU.
        let frac = a.as_secs_f64() / 5.0;
        assert!(frac > 0.3 && frac < 0.7, "duty cycle ~50%, got {frac}");
    }

    #[test]
    fn finite_job_consumes_exactly_and_exits() {
        let mut sim = Sim::new(SimConfig::default());
        let p = sim.spawn("j", Box::new(FiniteJob::new(Nanos::from_millis(250))));
        sim.run_until(Nanos::from_secs(1));
        assert!(sim.proc(p).unwrap().is_exited());
        assert_eq!(sim.proc(p).unwrap().cputime(), Nanos::from_millis(250));
    }
}
