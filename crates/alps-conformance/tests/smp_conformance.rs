//! SMP conformance: oracle vs production on merged M-CPU accounting.
//!
//! The ALPS algorithm never sees CPUs — only merged cumulative per-member
//! totals — so multi-core share enforcement reduces to two claims, both
//! byte-checked here for M ∈ {1, 2, 4}:
//!
//! 1. production and oracle stay lockstep-identical when the accounting
//!    underneath them is an M-CPU split with randomized migration churn
//!    (conservation of the split asserted at every charge);
//! 2. everything the scheduler emits — due lists, transitions, allowance
//!    bit patterns — is *invariant in M* for a fixed seed, because the
//!    merged readings are. The `DriveReport` fingerprint folds every
//!    per-quantum observable, so report equality across M is exactly
//!    that statement.

use alps_conformance::harness::{
    run_core_due_index_lockstep, run_core_schedule_smp, run_engine_schedule_smp, DriveReport,
};
use alps_core::{AlpsConfig, DueIndex, Instrumentation, IoPolicy, Nanos};

const QUANTUM: Nanos = Nanos(10_000_000);
const CPU_COUNTS: [usize; 3] = [1, 2, 4];

fn config(due: DueIndex, lazy: bool, io: IoPolicy) -> AlpsConfig {
    AlpsConfig::default()
        .with_quantum(QUANTUM)
        .with_due_index(due)
        .with_lazy_measurement(lazy)
        .with_io_policy(io)
        .with_cycle_log(true)
}

/// Core-level differential under migration churn, across the due-index ×
/// laziness corners, at every CPU count.
#[test]
fn core_scheduler_matches_oracle_on_smp_accounting() {
    for cpus in CPU_COUNTS {
        let mut total = DriveReport::default();
        for (c, cfg) in [
            config(DueIndex::Wheel, true, IoPolicy::OneQuantumPenalty),
            config(DueIndex::Scan, true, IoPolicy::OneQuantumPenalty),
            config(DueIndex::Wheel, false, IoPolicy::NoPenalty),
            config(DueIndex::Scan, false, IoPolicy::ForfeitAllowance),
        ]
        .into_iter()
        .enumerate()
        {
            for s in 0..50u64 {
                let seed = 0x50CE_0000_0000_0000 | (c as u64) << 32 | s;
                let rep = run_core_schedule_smp(cfg, seed, 60, cpus);
                total.quanta += rep.quanta;
                total.cycles += rep.cycles;
                total.transitions += rep.transitions;
                total.peak_live = total.peak_live.max(rep.peak_live);
            }
        }
        assert!(
            total.quanta > 10_000,
            "cpus {cpus}: {} quanta",
            total.quanta
        );
        assert!(total.cycles > 200, "cpus {cpus}: {} cycles", total.cycles);
        assert!(
            total.transitions > 1_000,
            "cpus {cpus}: {} transitions",
            total.transitions
        );
        assert!(total.peak_live >= 8, "population never grew");
    }
}

/// The load-bearing strictness gate: for a fixed seed the scheduler's
/// entire observable behavior is byte-identical at M = 1, 2, and 4 —
/// the SMP generalization is not a fork.
#[test]
fn scheduler_outputs_are_invariant_in_cpu_count() {
    for cfg in [
        config(DueIndex::Wheel, true, IoPolicy::OneQuantumPenalty),
        config(DueIndex::Scan, false, IoPolicy::ForfeitAllowance),
    ] {
        for seed in 0..20u64 {
            let baseline = run_core_schedule_smp(cfg, seed, 60, 1);
            assert!(baseline.fingerprint != 0, "fingerprint never folded");
            for cpus in [2, 4] {
                assert_eq!(
                    run_core_schedule_smp(cfg, seed, 60, cpus),
                    baseline,
                    "outputs differ between 1 and {cpus} CPUs (seed {seed})"
                );
            }
        }
    }
}

/// Wheel vs scan due-index lockstep under SMP accounting and migration
/// churn, at every CPU count.
#[test]
fn due_index_lockstep_holds_on_smp_accounting() {
    for cpus in CPU_COUNTS {
        let mut total = DriveReport::default();
        for lazy in [true, false] {
            let cfg = config(DueIndex::Wheel, lazy, IoPolicy::OneQuantumPenalty);
            for s in 0..50u64 {
                let seed = 0x10C5_0000_0000_0000 | u64::from(lazy) << 32 | s;
                let rep = run_core_due_index_lockstep(cfg, seed, 60, cpus);
                total.quanta += rep.quanta;
                total.cycles += rep.cycles;
            }
        }
        assert!(total.quanta > 5_000, "cpus {cpus}: {} quanta", total.quanta);
        assert!(total.cycles > 100, "cpus {cpus}: {} cycles", total.cycles);
    }
}

/// Engine-level differential over twin M-CPU substrates: merged reads,
/// migration churn, auto-reap, signal delivery — all byte-compared, and
/// invariant in M.
#[test]
fn engine_matches_oracle_on_smp_substrates() {
    for (c, cfg) in [
        config(DueIndex::Wheel, true, IoPolicy::OneQuantumPenalty),
        config(DueIndex::Scan, false, IoPolicy::NoPenalty),
    ]
    .into_iter()
    .enumerate()
    {
        for s in 0..25u64 {
            let seed = 0xE5E5_0000_0000_0000 | (c as u64) << 32 | s;
            let baseline = run_engine_schedule_smp(cfg, Instrumentation::Exact, seed, 50, 1);
            for cpus in [2, 4] {
                assert_eq!(
                    run_engine_schedule_smp(cfg, Instrumentation::Exact, seed, 50, cpus),
                    baseline,
                    "engine outputs differ between 1 and {cpus} CPUs (seed {seed})"
                );
            }
        }
    }
}

/// Same seed, same report: SMP differential runs replay exactly.
#[test]
fn smp_runs_are_deterministic() {
    let cfg = config(DueIndex::Wheel, true, IoPolicy::OneQuantumPenalty);
    assert_eq!(
        run_core_schedule_smp(cfg, 7, 60, 2),
        run_core_schedule_smp(cfg, 7, 60, 2)
    );
    assert_eq!(
        run_core_due_index_lockstep(cfg, 7, 60, 4),
        run_core_due_index_lockstep(cfg, 7, 60, 4)
    );
    assert_eq!(
        run_engine_schedule_smp(cfg, Instrumentation::Measured, 7, 50, 2),
        run_engine_schedule_smp(cfg, Instrumentation::Measured, 7, 50, 2)
    );
}
