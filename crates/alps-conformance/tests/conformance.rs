//! Differential conformance matrix: oracle vs production across
//! {wheel, scan} x {lazy, eager} x I/O policies x {flat, principals},
//! over well over a thousand generated schedules.
//!
//! Each schedule is seeded and deterministic; a failure message carries
//! the seed, so any divergence replays exactly.

use alps_conformance::harness::{run_core_schedule, run_engine_schedule, DriveReport, EngineMode};
use alps_core::{AlpsConfig, DueIndex, Instrumentation, IoPolicy, Nanos};

const QUANTUM: Nanos = Nanos(10_000_000);

fn config(due: DueIndex, lazy: bool, io: IoPolicy) -> AlpsConfig {
    AlpsConfig::default()
        .with_quantum(QUANTUM)
        .with_due_index(due)
        .with_lazy_measurement(lazy)
        .with_io_policy(io)
        .with_cycle_log(true)
}

fn core_matrix() -> Vec<AlpsConfig> {
    let mut out = Vec::new();
    for due in [DueIndex::Wheel, DueIndex::Scan] {
        for lazy in [true, false] {
            for io in [
                IoPolicy::OneQuantumPenalty,
                IoPolicy::NoPenalty,
                IoPolicy::ForfeitAllowance,
            ] {
                out.push(config(due, lazy, io));
            }
        }
    }
    out
}

/// The headline suite: 12 core configurations x 100 seeds = 1200
/// fault-free schedules, every transition and cycle record byte-compared.
#[test]
fn core_scheduler_matches_oracle_across_matrix() {
    let mut total = DriveReport::default();
    let mut schedules = 0u64;
    for (c, cfg) in core_matrix().into_iter().enumerate() {
        for s in 0..100u64 {
            let seed = (c as u64) << 32 | s;
            let rep = run_core_schedule(cfg, seed, 60);
            total.quanta += rep.quanta;
            total.cycles += rep.cycles;
            total.transitions += rep.transitions;
            total.peak_live = total.peak_live.max(rep.peak_live);
            schedules += 1;
        }
    }
    // The acceptance bar: at least a thousand schedules, and the schedules
    // actually exercised the interesting regimes (cycles complete,
    // eligibility flips, populations grow).
    assert!(schedules >= 1000, "only {schedules} schedules driven");
    assert!(total.quanta > 50_000, "too few quanta: {}", total.quanta);
    assert!(total.cycles > 1_000, "too few cycles: {}", total.cycles);
    assert!(
        total.transitions > 10_000,
        "too few transitions: {}",
        total.transitions
    );
    assert!(
        total.peak_live >= 8,
        "population never grew: {}",
        total.peak_live
    );
}

/// Engine-level differential: flat single-member principals with exact
/// instrumentation and auto-reaping, over twin mock substrates.
#[test]
fn flat_engine_matches_oracle() {
    let mut total = DriveReport::default();
    for (c, cfg) in [
        config(DueIndex::Wheel, true, IoPolicy::OneQuantumPenalty),
        config(DueIndex::Scan, true, IoPolicy::OneQuantumPenalty),
        config(DueIndex::Wheel, false, IoPolicy::NoPenalty),
        config(DueIndex::Scan, false, IoPolicy::ForfeitAllowance),
    ]
    .into_iter()
    .enumerate()
    {
        for s in 0..50u64 {
            let seed = 0xF1A7_0000_0000_0000 | (c as u64) << 32 | s;
            let rep = run_engine_schedule(cfg, Instrumentation::Exact, EngineMode::Flat, seed, 50);
            total.quanta += rep.quanta;
            total.cycles += rep.cycles;
            total.transitions += rep.transitions;
        }
    }
    assert!(total.quanta > 10_000, "too few quanta: {}", total.quanta);
    assert!(total.cycles > 200, "too few cycles: {}", total.cycles);
    assert!(
        total.transitions > 1_000,
        "too few transitions: {}",
        total.transitions
    );
}

/// Engine-level differential: multi-member principals with measured
/// instrumentation and membership churn.
#[test]
fn principal_engine_matches_oracle() {
    let mut total = DriveReport::default();
    for (c, cfg) in [
        config(DueIndex::Wheel, true, IoPolicy::OneQuantumPenalty),
        config(DueIndex::Scan, true, IoPolicy::OneQuantumPenalty),
        config(DueIndex::Wheel, false, IoPolicy::ForfeitAllowance),
        config(DueIndex::Scan, false, IoPolicy::NoPenalty),
    ]
    .into_iter()
    .enumerate()
    {
        for s in 0..50u64 {
            let seed = 0x9E1A_0000_0000_0000 | (c as u64) << 32 | s;
            let rep = run_engine_schedule(
                cfg,
                Instrumentation::Measured,
                EngineMode::Principals,
                seed,
                50,
            );
            total.quanta += rep.quanta;
            total.cycles += rep.cycles;
            total.transitions += rep.transitions;
        }
    }
    assert!(total.quanta > 10_000, "too few quanta: {}", total.quanta);
    assert!(total.cycles > 200, "too few cycles: {}", total.cycles);
    assert!(
        total.transitions > 1_000,
        "too few transitions: {}",
        total.transitions
    );
}

/// The same seed drives the same schedule to the same report — the whole
/// suite is replayable from a failure message.
#[test]
fn differential_runs_are_deterministic() {
    let cfg = config(DueIndex::Wheel, true, IoPolicy::OneQuantumPenalty);
    assert_eq!(run_core_schedule(cfg, 7, 60), run_core_schedule(cfg, 7, 60));
    assert_eq!(
        run_engine_schedule(
            cfg,
            Instrumentation::Measured,
            EngineMode::Principals,
            7,
            50
        ),
        run_engine_schedule(
            cfg,
            Instrumentation::Measured,
            EngineMode::Principals,
            7,
            50
        ),
    );
}
