//! Differential conformance matrix: oracle vs production across
//! {wheel, scan} x {lazy, eager} x I/O policies x {flat, principals},
//! over well over a thousand generated schedules.
//!
//! Each schedule is seeded and deterministic; a failure message carries
//! the seed, so any divergence replays exactly.

use alps_conformance::harness::{
    run_core_schedule, run_engine_schedule, run_tree_flat_equivalence, run_tree_schedule,
    DriveReport, EngineMode,
};
use alps_core::{AlpsConfig, DueIndex, Instrumentation, IoPolicy, MemberStore, Nanos};

const QUANTUM: Nanos = Nanos(10_000_000);

fn config(due: DueIndex, lazy: bool, io: IoPolicy) -> AlpsConfig {
    AlpsConfig::default()
        .with_quantum(QUANTUM)
        .with_due_index(due)
        .with_lazy_measurement(lazy)
        .with_io_policy(io)
        .with_cycle_log(true)
}

fn core_matrix() -> Vec<AlpsConfig> {
    let mut out = Vec::new();
    for due in [DueIndex::Wheel, DueIndex::Scan] {
        for lazy in [true, false] {
            for io in [
                IoPolicy::OneQuantumPenalty,
                IoPolicy::NoPenalty,
                IoPolicy::ForfeitAllowance,
            ] {
                out.push(config(due, lazy, io));
            }
        }
    }
    out
}

/// The headline suite: 12 core configurations x 100 seeds = 1200
/// fault-free schedules, every transition and cycle record byte-compared.
#[test]
fn core_scheduler_matches_oracle_across_matrix() {
    let mut total = DriveReport::default();
    let mut schedules = 0u64;
    for (c, cfg) in core_matrix().into_iter().enumerate() {
        for s in 0..100u64 {
            let seed = (c as u64) << 32 | s;
            let rep = run_core_schedule(cfg, seed, 60);
            total.quanta += rep.quanta;
            total.cycles += rep.cycles;
            total.transitions += rep.transitions;
            total.peak_live = total.peak_live.max(rep.peak_live);
            schedules += 1;
        }
    }
    // The acceptance bar: at least a thousand schedules, and the schedules
    // actually exercised the interesting regimes (cycles complete,
    // eligibility flips, populations grow).
    assert!(schedules >= 1000, "only {schedules} schedules driven");
    assert!(total.quanta > 50_000, "too few quanta: {}", total.quanta);
    assert!(total.cycles > 1_000, "too few cycles: {}", total.cycles);
    assert!(
        total.transitions > 10_000,
        "too few transitions: {}",
        total.transitions
    );
    assert!(
        total.peak_live >= 8,
        "population never grew: {}",
        total.peak_live
    );
}

/// Engine-level differential: flat single-member principals with exact
/// instrumentation and auto-reaping, over twin mock substrates.
#[test]
fn flat_engine_matches_oracle() {
    let mut total = DriveReport::default();
    for (c, cfg) in [
        config(DueIndex::Wheel, true, IoPolicy::OneQuantumPenalty),
        config(DueIndex::Scan, true, IoPolicy::OneQuantumPenalty),
        config(DueIndex::Wheel, false, IoPolicy::NoPenalty),
        config(DueIndex::Scan, false, IoPolicy::ForfeitAllowance),
    ]
    .into_iter()
    .enumerate()
    {
        for s in 0..50u64 {
            let seed = 0xF1A7_0000_0000_0000 | (c as u64) << 32 | s;
            let rep = run_engine_schedule(cfg, Instrumentation::Exact, EngineMode::Flat, seed, 50);
            total.quanta += rep.quanta;
            total.cycles += rep.cycles;
            total.transitions += rep.transitions;
        }
    }
    assert!(total.quanta > 10_000, "too few quanta: {}", total.quanta);
    assert!(total.cycles > 200, "too few cycles: {}", total.cycles);
    assert!(
        total.transitions > 1_000,
        "too few transitions: {}",
        total.transitions
    );
}

/// Engine-level differential: multi-member principals with measured
/// instrumentation and membership churn.
#[test]
fn principal_engine_matches_oracle() {
    let mut total = DriveReport::default();
    for (c, cfg) in [
        config(DueIndex::Wheel, true, IoPolicy::OneQuantumPenalty),
        config(DueIndex::Scan, true, IoPolicy::OneQuantumPenalty),
        config(DueIndex::Wheel, false, IoPolicy::ForfeitAllowance),
        config(DueIndex::Scan, false, IoPolicy::NoPenalty),
    ]
    .into_iter()
    .enumerate()
    {
        for s in 0..50u64 {
            let seed = 0x9E1A_0000_0000_0000 | (c as u64) << 32 | s;
            let rep = run_engine_schedule(
                cfg,
                Instrumentation::Measured,
                EngineMode::Principals,
                seed,
                50,
            );
            total.quanta += rep.quanta;
            total.cycles += rep.cycles;
            total.transitions += rep.transitions;
        }
    }
    assert!(total.quanta > 10_000, "too few quanta: {}", total.quanta);
    assert!(total.cycles > 200, "too few cycles: {}", total.cycles);
    assert!(
        total.transitions > 1_000,
        "too few transitions: {}",
        total.transitions
    );
}

/// The arena member store is observation-equivalent to the seed
/// contiguous `Vec`: the full core matrix re-run against the oracle with
/// [`MemberStore::Contiguous`] (the headline suite covers the chunked
/// default), byte-compared as always.
#[test]
fn core_scheduler_matches_oracle_with_contiguous_store() {
    let mut total = DriveReport::default();
    for (c, cfg) in core_matrix().into_iter().enumerate() {
        let cfg = cfg.with_member_store(MemberStore::Contiguous);
        for s in 0..25u64 {
            let seed = 0xC0_0000_0000 | (c as u64) << 24 | s;
            let rep = run_core_schedule(cfg, seed, 60);
            total.quanta += rep.quanta;
            total.cycles += rep.cycles;
            total.transitions += rep.transitions;
        }
    }
    assert!(total.quanta > 10_000, "too few quanta: {}", total.quanta);
    assert!(total.cycles > 250, "too few cycles: {}", total.cycles);
    assert!(
        total.transitions > 2_500,
        "too few transitions: {}",
        total.transitions
    );
}

/// The engine stack (dense principal store included) against the oracle
/// on the contiguous member store, both flat and multi-member modes.
#[test]
fn engine_matches_oracle_with_contiguous_store() {
    let mut total = DriveReport::default();
    for (m, mode) in [EngineMode::Flat, EngineMode::Principals]
        .into_iter()
        .enumerate()
    {
        for (c, cfg) in [
            config(DueIndex::Wheel, true, IoPolicy::OneQuantumPenalty),
            config(DueIndex::Scan, false, IoPolicy::NoPenalty),
        ]
        .into_iter()
        .enumerate()
        {
            let cfg = cfg.with_member_store(MemberStore::Contiguous);
            for s in 0..15u64 {
                let seed = 0xA2E4_0000_0000_0000 | (m as u64) << 40 | (c as u64) << 32 | s;
                let rep = run_engine_schedule(cfg, Instrumentation::Exact, mode, seed, 50);
                total.quanta += rep.quanta;
                total.cycles += rep.cycles;
                total.transitions += rep.transitions;
            }
        }
    }
    assert!(total.quanta > 2_000, "too few quanta: {}", total.quanta);
    assert!(total.cycles > 50, "too few cycles: {}", total.cycles);
}

/// Live share tree under full churn: the cached incremental-entitlement
/// path is held against a from-scratch tree walk at every bind and every
/// due-member refresh (inside the driver), and the whole run's observable
/// fingerprint must be byte-identical across
/// {wheel, scan} × {chunked, contiguous}.
#[test]
fn tree_schedule_cache_matches_naive_walk_and_is_config_invariant() {
    let mut total = DriveReport::default();
    for s in 0..40u64 {
        let seed = 0x73EE_0000_0000_0000 | s;
        let mut reports = Vec::new();
        for due in [DueIndex::Wheel, DueIndex::Scan] {
            for store in [MemberStore::Chunked, MemberStore::Contiguous] {
                let cfg = config(due, true, IoPolicy::OneQuantumPenalty).with_member_store(store);
                reports.push(run_tree_schedule(cfg, seed, 60));
            }
        }
        for r in &reports[1..] {
            assert_eq!(
                *r, reports[0],
                "tree run diverges across due-index/store configs (seed {seed})"
            );
        }
        total.quanta += reports[0].quanta;
        total.cycles += reports[0].cycles;
        total.transitions += reports[0].transitions;
        total.peak_live = total.peak_live.max(reports[0].peak_live);
    }
    assert!(total.quanta > 2_000, "too few quanta: {}", total.quanta);
    assert!(total.cycles >= 25, "too few cycles: {}", total.cycles);
    assert!(
        total.transitions > 500,
        "too few transitions: {}",
        total.transitions
    );
    assert!(
        total.peak_live >= 8,
        "population never grew: {}",
        total.peak_live
    );
}

/// A static, fully balanced 3-level tree schedules byte-identically to a
/// flat scheduler given the same integer shares — across the due-index
/// and member-store matrix, with balanced churn keeping the entitlement
/// cache honest (every re-derivation must be a no-op).
#[test]
fn static_balanced_tree_matches_flat_scheduler() {
    let mut total = DriveReport::default();
    for due in [DueIndex::Wheel, DueIndex::Scan] {
        for store in [MemberStore::Chunked, MemberStore::Contiguous] {
            let cfg = config(due, true, IoPolicy::OneQuantumPenalty).with_member_store(store);
            for s in 0..25u64 {
                let seed = 0xF1A7_7EE0_0000_0000 | s;
                let rep = run_tree_flat_equivalence(cfg, seed, 80);
                total.quanta += rep.quanta;
                total.cycles += rep.cycles;
                total.transitions += rep.transitions;
            }
        }
    }
    assert!(total.quanta > 5_000, "too few quanta: {}", total.quanta);
    assert!(total.cycles > 100, "too few cycles: {}", total.cycles);
}

/// The same seed drives the same schedule to the same report — the whole
/// suite is replayable from a failure message.
#[test]
fn differential_runs_are_deterministic() {
    let cfg = config(DueIndex::Wheel, true, IoPolicy::OneQuantumPenalty);
    assert_eq!(run_core_schedule(cfg, 7, 60), run_core_schedule(cfg, 7, 60));
    assert_eq!(
        run_engine_schedule(
            cfg,
            Instrumentation::Measured,
            EngineMode::Principals,
            7,
            50
        ),
        run_engine_schedule(
            cfg,
            Instrumentation::Measured,
            EngineMode::Principals,
            7,
            50
        ),
    );
}
