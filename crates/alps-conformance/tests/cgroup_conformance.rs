//! Differential conformance for the cgroup actuator: the production
//! engine driven over a `FakeCgroupFs`-backed `CgroupSubstrate` in
//! signal-equivalent (freezer) mode vs the reference `MockSubstrate`,
//! across randomized churn schedules — byte-identical due lists,
//! transitions, signals, event streams, cycle records, stats, and
//! allowance bit patterns, plus a frozen↔stopped / usage↔cpu state
//! cross-check after every op.
//!
//! Each schedule is seeded and deterministic; a failure message carries
//! the seed, so any divergence replays exactly.

use alps_conformance::actuator::run_cgroup_schedule;
use alps_conformance::harness::DriveReport;
use alps_core::{AlpsConfig, DueIndex, Instrumentation, IoPolicy, Nanos};

const QUANTUM: Nanos = Nanos(10_000_000);

fn config(due: DueIndex, lazy: bool, io: IoPolicy) -> AlpsConfig {
    AlpsConfig::default()
        .with_quantum(QUANTUM)
        .with_due_index(due)
        .with_lazy_measurement(lazy)
        .with_io_policy(io)
        .with_cycle_log(true)
}

/// The PR-path smoke matrix: 4 configurations × 25 seeds of churn
/// (spawns, removals, share changes, blocks, exits) with the cgroup
/// substrate held byte-identical to the mock.
#[test]
fn cgroup_substrate_matches_mock_substrate() {
    let mut total = DriveReport::default();
    for (c, cfg) in [
        config(DueIndex::Wheel, true, IoPolicy::OneQuantumPenalty),
        config(DueIndex::Scan, true, IoPolicy::OneQuantumPenalty),
        config(DueIndex::Wheel, false, IoPolicy::NoPenalty),
        config(DueIndex::Scan, false, IoPolicy::ForfeitAllowance),
    ]
    .into_iter()
    .enumerate()
    {
        for s in 0..25u64 {
            let seed = 0xC6_0000_0000_0000 | (c as u64) << 32 | s;
            let rep = run_cgroup_schedule(cfg, Instrumentation::Exact, seed, 50);
            total.quanta += rep.quanta;
            total.cycles += rep.cycles;
            total.transitions += rep.transitions;
            total.peak_live = total.peak_live.max(rep.peak_live);
        }
    }
    assert!(total.quanta > 5_000, "too few quanta: {}", total.quanta);
    assert!(total.cycles > 100, "too few cycles: {}", total.cycles);
    assert!(
        total.transitions > 500,
        "too few transitions: {}",
        total.transitions
    );
    assert!(
        total.peak_live >= 8,
        "population never grew: {}",
        total.peak_live
    );
}

/// Measured instrumentation takes the cycle-boundary readings through the
/// substrate's visible counters (`cpu.stat` vs the mock's) — the
/// substrates must still be indistinguishable.
#[test]
fn cgroup_substrate_matches_mock_under_measured_instrumentation() {
    let mut total = DriveReport::default();
    let cfg = config(DueIndex::Wheel, true, IoPolicy::OneQuantumPenalty);
    for s in 0..25u64 {
        let seed = 0xC6_3EA5_0000_0000 | s;
        let rep = run_cgroup_schedule(cfg, Instrumentation::Measured, seed, 50);
        total.quanta += rep.quanta;
        total.transitions += rep.transitions;
    }
    assert!(total.quanta > 1_000, "too few quanta: {}", total.quanta);
    assert!(
        total.transitions > 200,
        "too few transitions: {}",
        total.transitions
    );
}

/// Replayability: the same seed drives the same schedule to the same
/// report.
#[test]
fn cgroup_differential_runs_are_deterministic() {
    let cfg = config(DueIndex::Wheel, true, IoPolicy::OneQuantumPenalty);
    assert_eq!(
        run_cgroup_schedule(cfg, Instrumentation::Exact, 11, 50),
        run_cgroup_schedule(cfg, Instrumentation::Exact, 11, 50)
    );
}

/// The nightly deep matrix: the full {wheel, scan} × {lazy, eager} ×
/// I/O-policy grid × 40 seeds. Ignored on the PR path; CI's scheduled
/// run executes it with `--ignored`.
#[test]
#[ignore = "nightly: full randomized-schedule matrix (run with --ignored)"]
fn cgroup_substrate_matches_mock_across_full_matrix() {
    let mut total = DriveReport::default();
    let mut schedules = 0u64;
    let mut c = 0u64;
    for due in [DueIndex::Wheel, DueIndex::Scan] {
        for lazy in [true, false] {
            for io in [
                IoPolicy::OneQuantumPenalty,
                IoPolicy::NoPenalty,
                IoPolicy::ForfeitAllowance,
            ] {
                let cfg = config(due, lazy, io);
                for s in 0..40u64 {
                    let seed = 0xC6_F011_0000_0000 | c << 32 | s;
                    for inst in [Instrumentation::Exact, Instrumentation::Measured] {
                        let rep = run_cgroup_schedule(cfg, inst, seed, 60);
                        total.quanta += rep.quanta;
                        total.cycles += rep.cycles;
                        total.transitions += rep.transitions;
                        schedules += 1;
                    }
                }
                c += 1;
            }
        }
    }
    assert!(schedules >= 960, "only {schedules} schedules driven");
    assert!(total.quanta > 50_000, "too few quanta: {}", total.quanta);
    assert!(total.cycles > 1_000, "too few cycles: {}", total.cycles);
}
