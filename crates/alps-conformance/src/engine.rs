//! A naive replica of the generic engine loop (`alps_core::Engine`).
//!
//! Mirrors every externally visible behavior — overrun detection, the
//! read/complete/signal stages, auto-reaping, cycle instrumentation,
//! [`EngineStats`] — over the same [`Substrate`] trait, but built on the
//! naive oracle schedulers with fresh allocations per quantum. The
//! differential harness runs it and the production engine over identical
//! mock substrates and demands identical event streams.

use core::fmt;
use core::hash::Hash;
use std::collections::HashMap;

use alps_core::{
    AlpsConfig, CycleEntry, CycleRecord, EngineStats, Event, EventSink, Instrumentation,
    MemberTransition, MembershipChange, Nanos, ProcId, Signal, StaleId, Substrate, Transition,
};

use crate::oracle::{MemberReadings, OraclePrincipalScheduler};

/// Naive reference implementation of `alps_core::Engine`.
#[derive(Debug, Clone)]
pub struct OracleEngine<M: Copy + Ord + Hash + fmt::Debug> {
    sched: OraclePrincipalScheduler<M>,
    order: Vec<ProcId>,
    stale: usize,
    member_index: HashMap<M, ProcId>,
    snapshot: Vec<(ProcId, Nanos)>,
    cycles: Vec<CycleRecord>,
    stats: EngineStats,
    record_cycles: bool,
    instrumentation: Instrumentation,
    auto_reap: bool,
    last_begin: Option<Nanos>,
    /// The due list of the in-flight invocation (fresh each quantum).
    due: Vec<(ProcId, Vec<M>)>,
    /// Outcome of the last completed invocation.
    transitions: Vec<Transition>,
    signals: Vec<MemberTransition<M>>,
    cycle_completed: bool,
}

impl<M: Copy + Ord + Hash + fmt::Debug> OracleEngine<M> {
    /// An empty oracle engine with the same constructor contract as the
    /// production engine.
    pub fn new(cfg: AlpsConfig, instrumentation: Instrumentation) -> Self {
        let record_cycles = cfg.record_cycles;
        let inner_cfg = match instrumentation {
            Instrumentation::Exact => cfg.with_cycle_log(false),
            Instrumentation::Measured => cfg,
        };
        OracleEngine {
            sched: OraclePrincipalScheduler::new(inner_cfg),
            order: Vec::new(),
            stale: 0,
            member_index: HashMap::new(),
            snapshot: Vec::new(),
            cycles: Vec::new(),
            stats: EngineStats::default(),
            record_cycles,
            instrumentation,
            auto_reap: false,
            last_begin: None,
            due: Vec::new(),
            transitions: Vec::new(),
            signals: Vec::new(),
            cycle_completed: false,
        }
    }

    /// Enable sole-member auto-reaping.
    pub fn with_auto_reap(mut self, on: bool) -> Self {
        self.auto_reap = on;
        self
    }

    /// Register a single-member principal.
    pub fn add_member(&mut self, member: M, share: u64, initial_cpu: Nanos) -> ProcId {
        let id = self.sched.add_principal(share);
        let _ = self.sched.set_membership(id, &[(member, initial_cpu)]);
        self.member_index.insert(member, id);
        self.order.push(id);
        self.snapshot.push((id, initial_cpu));
        id
    }

    /// Register an empty principal.
    pub fn add_principal(&mut self, share: u64) -> ProcId {
        let id = self.sched.add_principal(share);
        self.order.push(id);
        self.snapshot.push((id, Nanos::ZERO));
        id
    }

    /// Replace a principal's member set.
    pub fn set_membership(
        &mut self,
        id: ProcId,
        current: &[(M, Nanos)],
    ) -> Option<MembershipChange<M>> {
        let change = self.sched.set_membership(id, current)?;
        for m in &change.added {
            self.member_index.insert(*m, id);
        }
        for m in &change.removed {
            self.member_index.remove(m);
        }
        Some(change)
    }

    /// Deregister a principal, returning its members.
    pub fn remove_principal(&mut self, id: ProcId) -> Option<Vec<M>> {
        let members = self.sched.remove_principal(id)?;
        self.stale += 1;
        if self.stale * 2 > self.order.len() {
            let sched = &self.sched;
            self.order.retain(|&x| sched.is_eligible(x).is_some());
            self.snapshot
                .retain(|&(x, _)| sched.is_eligible(x).is_some());
            self.stale = 0;
        }
        for m in &members {
            self.member_index.remove(m);
        }
        Some(members)
    }

    /// Change a principal's share.
    pub fn set_share(&mut self, id: ProcId, share: u64) -> Result<(), StaleId> {
        self.sched.set_share(id, share)
    }

    /// Stage 1: enter a quantum (overrun detection + due discovery).
    pub fn begin_quantum<S>(
        &mut self,
        sub: &mut S,
        sink: &mut dyn EventSink<M>,
    ) -> Result<usize, S::Error>
    where
        S: Substrate<Member = M>,
    {
        let now = sub.now();
        if let Some(last) = self.last_begin {
            let gap = now.saturating_sub(last);
            if gap >= self.quantum() * 2 {
                self.stats.overruns += 1;
                sink.on_event(&Event::Overrun { now, gap });
            }
        }
        self.last_begin = Some(now);
        self.stats.quanta += 1;
        self.due = self.sched.begin_quantum();
        let members: usize = self.due.iter().map(|(_, ms)| ms.len()).sum();
        sink.on_event(&Event::QuantumStart {
            invocation: self.stats.quanta,
            now,
            due: members,
        });
        Ok(members)
    }

    /// The due list of the last [`Self::begin_quantum`].
    pub fn due(&self) -> &[(ProcId, Vec<M>)] {
        &self.due
    }

    /// Stage 2: read the due members and complete the invocation.
    pub fn complete_quantum<S>(
        &mut self,
        sub: &mut S,
        sink: &mut dyn EventSink<M>,
    ) -> Result<(), S::Error>
    where
        S: Substrate<Member = M>,
    {
        let due = std::mem::take(&mut self.due);
        let mut readings: Vec<(ProcId, MemberReadings<M>)> = Vec::new();
        let mut gone = Vec::new();
        for (id, members) in &due {
            let mut row = Vec::new();
            for &m in members {
                match sub.read(m)? {
                    Some(o) => {
                        self.stats.measurements += 1;
                        sink.on_event(&Event::Measured {
                            member: m,
                            cpu: o.total_cpu,
                            blocked: o.blocked,
                        });
                        row.push((m, Some(o)));
                    }
                    None => {
                        gone.push((*id, m));
                        row.push((m, None));
                    }
                }
            }
            readings.push((*id, row));
        }
        for (id, m) in gone {
            self.reap(id, m, sink);
        }
        let now = sub.now();
        let out = self.sched.complete_quantum(&readings, now);
        self.transitions = out.transitions;
        self.signals = out.signals;
        self.cycle_completed = out.cycle_completed;
        if out.cycle_completed {
            self.stats.cycles += 1;
            sink.on_event(&Event::CycleEnd {
                index: self.sched.inner().cycles_completed().saturating_sub(1),
                now,
            });
            if self.record_cycles {
                match self.instrumentation {
                    Instrumentation::Exact => self.record_exact_cycle(sub, now)?,
                    Instrumentation::Measured => {
                        if let Some(rec) = out.cycle_record {
                            self.cycles.push(rec);
                        }
                    }
                }
            }
        }
        self.due = due;
        Ok(())
    }

    /// Signals produced by the last [`Self::complete_quantum`].
    pub fn pending_signals(&self) -> &[MemberTransition<M>] {
        &self.signals
    }

    /// Principal-level transitions of the last invocation.
    pub fn last_transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Whether the last invocation crossed a cycle boundary.
    pub fn last_cycle_completed(&self) -> bool {
        self.cycle_completed
    }

    /// Stage 3: deliver stop/continue signals.
    pub fn apply_signals<S>(
        &mut self,
        sub: &mut S,
        signals: &[MemberTransition<M>],
        sink: &mut dyn EventSink<M>,
    ) -> Result<(), S::Error>
    where
        S: Substrate<Member = M>,
    {
        for t in signals {
            let m = t.member();
            let sig = match t {
                MemberTransition::Resume(_) => Signal::Continue,
                MemberTransition::Suspend(_) => Signal::Stop,
            };
            let delivered = sub.deliver(m, sig)?;
            self.stats.signals += 1;
            sink.on_event(&Event::SignalSent {
                member: m,
                signal: sig,
                delivered,
            });
            if !delivered {
                if let Some(&id) = self.member_index.get(&m) {
                    self.reap(id, m, sink);
                }
            }
        }
        Ok(())
    }

    /// Stage 3 for the common case: deliver the signals produced by the
    /// last [`Self::complete_quantum`].
    pub fn apply_pending_signals<S>(
        &mut self,
        sub: &mut S,
        sink: &mut dyn EventSink<M>,
    ) -> Result<(), S::Error>
    where
        S: Substrate<Member = M>,
    {
        let signals = std::mem::take(&mut self.signals);
        let result = self.apply_signals(sub, &signals, sink);
        self.signals = signals;
        result
    }

    /// All three stages back to back.
    pub fn run_quantum<S>(
        &mut self,
        sub: &mut S,
        sink: &mut dyn EventSink<M>,
    ) -> Result<&[Transition], S::Error>
    where
        S: Substrate<Member = M>,
    {
        self.begin_quantum(sub, sink)?;
        self.complete_quantum(sub, sink)?;
        self.apply_pending_signals(sub, sink)?;
        Ok(&self.transitions)
    }

    fn reap(&mut self, id: ProcId, m: M, sink: &mut dyn EventSink<M>) {
        if !self.auto_reap {
            return;
        }
        if self.sched.members(id).as_deref() != Some(&[m]) {
            return;
        }
        self.remove_principal(id);
        self.stats.reaped += 1;
        sink.on_event(&Event::MemberReaped { member: m });
    }

    fn record_exact_cycle<S>(&mut self, sub: &mut S, now: Nanos) -> Result<(), S::Error>
    where
        S: Substrate<Member = M>,
    {
        let mut entries = Vec::new();
        let mut total = Nanos::ZERO;
        for i in 0..self.snapshot.len() {
            let (id, last) = self.snapshot[i];
            if self.sched.is_eligible(id).is_none() {
                continue;
            }
            let mut sum = Nanos::ZERO;
            let mut alive = false;
            for m in self.sched.members(id).unwrap_or_default() {
                if let Some(cpu) = sub.read_exact(m)? {
                    sum += cpu;
                    alive = true;
                }
            }
            let current = if alive { sum } else { last };
            let consumed = current.saturating_sub(last);
            self.snapshot[i].1 = current;
            total += consumed;
            entries.push(CycleEntry {
                id,
                share: self.sched.inner().share(id).unwrap_or(0),
                consumed,
            });
        }
        self.cycles.push(CycleRecord {
            index: self.sched.inner().cycles_completed().saturating_sub(1),
            completed_at: now,
            total_shares: self.sched.inner().total_shares(),
            total_consumed: total,
            entries,
        });
        Ok(())
    }

    /// Counters of everything the engine has done.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// The per-cycle consumption log.
    pub fn cycles(&self) -> &[CycleRecord] {
        &self.cycles
    }

    /// A principal's remaining allowance in quanta.
    pub fn allowance(&self, id: ProcId) -> Option<f64> {
        self.sched.inner().allowance(id)
    }

    /// A principal's share.
    pub fn share(&self, id: ProcId) -> Option<u64> {
        self.sched.inner().share(id)
    }

    /// Whether a principal is eligible.
    pub fn is_eligible(&self, id: ProcId) -> Option<bool> {
        self.sched.inner().is_eligible(id)
    }

    /// Members of a principal.
    pub fn members(&self, id: ProcId) -> Option<Vec<M>> {
        self.sched.members(id)
    }

    /// The configured quantum.
    pub fn quantum(&self) -> Nanos {
        self.sched.inner().quantum()
    }

    /// The flat oracle scheduler underneath, for aggregate comparisons.
    pub fn scheduler(&self) -> &crate::oracle::OracleScheduler {
        self.sched.inner()
    }
}
