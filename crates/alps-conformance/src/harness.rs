//! Differential drivers: oracle and production side by side.
//!
//! Each driver takes a configuration and a seed, generates a schedule
//! ([`crate::schedule::generate`]), and applies every op to both
//! implementations, asserting byte-identical externally visible state
//! after each step: minted ids, due lists, transitions, signals, events,
//! cycle records, aggregate counters, and per-process `f64` allowances
//! compared by bit pattern. Any divergence panics with the seed, so a
//! failure is replayable.

use core::convert::Infallible;
use std::collections::{BTreeMap, HashMap};

use alps_core::{
    AlpsConfig, AlpsScheduler, Engine, Instrumentation, Nanos, NodeId, Observation, ProcId,
    RecordingSink, Signal, Substrate, TreeShares,
};

use crate::engine::OracleEngine;
use crate::oracle::OracleScheduler;
use crate::schedule::{generate, generate_smp, Lcg, Op};

/// What a differential run covered, so suites can assert the schedules
/// actually reached the interesting regimes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriveReport {
    /// Quanta driven.
    pub quanta: u64,
    /// Cycle boundaries crossed.
    pub cycles: u64,
    /// Eligibility transitions observed.
    pub transitions: u64,
    /// Peak live population.
    pub peak_live: usize,
    /// FNV-style fold of every per-quantum observable (due ids,
    /// transitions, allowance bit patterns). The SMP drivers fill this in
    /// so suites can assert that two runs saw *byte-identical* scheduler
    /// behavior — e.g. that the engine's outputs are invariant in the CPU
    /// count. The uniprocessor drivers leave it 0.
    pub fingerprint: u64,
}

/// Fold one word into a [`DriveReport::fingerprint`].
pub(crate) fn fold(fp: &mut u64, word: u64) {
    *fp = fp.wrapping_mul(0x0000_0100_0000_01B3) ^ word;
}

/// Drive one schedule against `AlpsScheduler` and [`OracleScheduler`],
/// asserting lockstep equality after every op. Panics (with `seed` in the
/// message) on any divergence.
pub fn run_core_schedule(cfg: AlpsConfig, seed: u64, len: usize) -> DriveReport {
    let mut prod = AlpsScheduler::new(cfg);
    let mut oracle = OracleScheduler::new(cfg);
    let mut workload = Lcg::new(seed ^ 0x00C0_FFEE);
    let mut live: Vec<ProcId> = Vec::new();
    let mut minted: Vec<ProcId> = Vec::new();
    let mut cpu: HashMap<ProcId, Nanos> = HashMap::new();
    let mut now = Nanos::ZERO;
    let q = cfg.quantum;
    let mut report = DriveReport::default();

    for op in generate(seed, len) {
        match op {
            Op::Add { share } => {
                if live.len() >= 12 {
                    continue;
                }
                let initial = workload.nanos_below(q);
                let id = prod.add_process(share, initial);
                let oid = oracle.add_process(share, initial);
                assert_eq!(id, oid, "minted ids diverge (seed {seed})");
                live.push(id);
                minted.push(id);
                cpu.insert(id, initial);
            }
            Op::Remove { victim } => {
                if live.is_empty() {
                    continue;
                }
                let id = live.remove(victim as usize % live.len());
                assert_eq!(
                    prod.remove_process(id),
                    oracle.remove_process(id),
                    "remove diverges (seed {seed})"
                );
                // A second removal of the same id must be a stale no-op on
                // both sides.
                assert_eq!(prod.remove_process(id), None);
                assert_eq!(oracle.remove_process(id), None);
            }
            Op::SetShare { victim, share } => {
                // Mostly target live processes; sometimes a stale id, which
                // must error identically.
                let pool = if workload.chance(1, 5) {
                    &minted
                } else {
                    &live
                };
                if pool.is_empty() {
                    continue;
                }
                let id = pool[victim as usize % pool.len()];
                assert_eq!(
                    prod.set_share(id, share),
                    oracle.set_share(id, share),
                    "set_share diverges (seed {seed})"
                );
            }
            Op::Quantum { repeat } => {
                for _ in 0..repeat {
                    now = now.saturating_add(q);
                    let due = prod.begin_quantum();
                    let due_o = oracle.begin_quantum();
                    assert_eq!(due, due_o, "due lists diverge (seed {seed})");
                    // Occasionally remove a due process between begin and
                    // complete: its observation becomes stale and both
                    // sides must skip it without charge.
                    if !due.is_empty() && workload.chance(1, 8) {
                        let id = due[workload.below(due.len() as u64) as usize];
                        live.retain(|&x| x != id);
                        assert_eq!(prod.remove_process(id), oracle.remove_process(id));
                    }
                    let obs: Vec<(ProcId, Observation)> = due
                        .iter()
                        .map(|&id| {
                            let c = cpu.get_mut(&id).expect("due process has a cpu counter");
                            *c = c.saturating_add(workload.nanos_below(Nanos(q.0 * 3 / 2)));
                            let blocked = workload.chance(1, 6);
                            (
                                id,
                                Observation {
                                    total_cpu: *c,
                                    blocked,
                                },
                            )
                        })
                        .collect();
                    let out = prod.complete_quantum(&obs, now);
                    let out_o = oracle.complete_quantum(&obs, now);
                    assert_eq!(
                        out.transitions, out_o.transitions,
                        "transitions diverge (seed {seed})"
                    );
                    assert_eq!(
                        out.cycle_completed, out_o.cycle_completed,
                        "cycle boundary diverges (seed {seed})"
                    );
                    assert_eq!(
                        out.cycle_record, out_o.cycle_record,
                        "cycle records diverge (seed {seed})"
                    );
                    report.quanta += 1;
                    report.cycles += u64::from(out.cycle_completed);
                    report.transitions += out.transitions.len() as u64;
                }
            }
            // Uniprocessor schedules never contain migrations.
            Op::Migrate { .. } => {}
        }
        check_core_state(&prod, &oracle, &minted, seed);
        report.peak_live = report.peak_live.max(live.len());
    }
    report
}

/// Assert every observable aggregate and per-process value matches,
/// including `f64`s by bit pattern.
fn check_core_state(prod: &AlpsScheduler, oracle: &OracleScheduler, minted: &[ProcId], seed: u64) {
    assert_eq!(prod.len(), oracle.len(), "len diverges (seed {seed})");
    assert_eq!(
        prod.total_shares(),
        oracle.total_shares(),
        "total_shares diverges (seed {seed})"
    );
    assert_eq!(
        prod.cycles_completed(),
        oracle.cycles_completed(),
        "cycles_completed diverges (seed {seed})"
    );
    assert_eq!(
        prod.invocations(),
        oracle.invocations(),
        "invocations diverge (seed {seed})"
    );
    assert_eq!(
        prod.cycle_time_remaining().to_bits(),
        oracle.cycle_time_remaining().to_bits(),
        "t_c diverges (seed {seed}): {} vs {}",
        prod.cycle_time_remaining(),
        oracle.cycle_time_remaining()
    );
    for &id in minted {
        assert_eq!(
            prod.share(id),
            oracle.share(id),
            "share diverges (seed {seed})"
        );
        assert_eq!(
            prod.is_eligible(id),
            oracle.is_eligible(id),
            "eligibility diverges (seed {seed})"
        );
        assert_eq!(
            prod.allowance(id).map(f64::to_bits),
            oracle.allowance(id).map(f64::to_bits),
            "allowance diverges for {id:?} (seed {seed}): {:?} vs {:?}",
            prod.allowance(id),
            oracle.allowance(id)
        );
    }
}

/// One mocked process in a [`MockSubstrate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MockProc {
    /// Cumulative CPU time.
    pub cpu: Nanos,
    /// Observed-blocked flag (§2.4 input).
    pub blocked: bool,
    /// Whether the process has exited (reads return `None`, deliveries
    /// bounce).
    pub gone: bool,
    /// Whether the process is currently stopped (actuation state; the
    /// workload model does not advance stopped processes).
    pub stopped: bool,
}

/// A deterministic in-memory [`Substrate`] driven by the harness.
///
/// Generic in the member key (default `u32`, the historical pid type of
/// the engine suites) so the actuator differential suite can key it by
/// `i32` kernel pids and compare against the cgroup substrate with no
/// type adaptation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MockSubstrate<M: Copy + Ord + core::hash::Hash + core::fmt::Debug = u32> {
    /// The substrate clock.
    pub now: Nanos,
    /// Member state by pid.
    pub procs: BTreeMap<M, MockProc>,
}

impl<M: Copy + Ord + core::hash::Hash + core::fmt::Debug> Default for MockSubstrate<M> {
    fn default() -> Self {
        MockSubstrate {
            now: Nanos::ZERO,
            procs: BTreeMap::new(),
        }
    }
}

impl<M: Copy + Ord + core::hash::Hash + core::fmt::Debug> Substrate for MockSubstrate<M> {
    type Member = M;
    type Error = Infallible;

    fn now(&mut self) -> Nanos {
        self.now
    }

    fn read(&mut self, member: M) -> Result<Option<Observation>, Infallible> {
        Ok(self.procs.get(&member).and_then(|p| {
            (!p.gone).then_some(Observation {
                total_cpu: p.cpu,
                blocked: p.blocked,
            })
        }))
    }

    fn deliver(&mut self, member: M, signal: Signal) -> Result<bool, Infallible> {
        match self.procs.get_mut(&member) {
            Some(p) if !p.gone => {
                p.stopped = signal == Signal::Stop;
                Ok(true)
            }
            _ => Ok(false),
        }
    }
}

/// Whether an engine schedule drives flat single-member principals (the
/// per-process supervisor shape, auto-reap on) or multi-member principals
/// with §5 membership refreshes (auto-reap off).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    /// One member per principal; exits are auto-reaped.
    Flat,
    /// 1–3 members per principal; membership reconciled by refresh ops.
    Principals,
}

/// Drive one schedule against `alps_core::Engine` and [`OracleEngine`]
/// over twin [`MockSubstrate`]s, asserting identical due lists,
/// transitions, signals, event streams, stats, cycle logs, and substrate
/// end states after every quantum.
pub fn run_engine_schedule(
    cfg: AlpsConfig,
    instrumentation: Instrumentation,
    mode: EngineMode,
    seed: u64,
    len: usize,
) -> DriveReport {
    let auto_reap = mode == EngineMode::Flat;
    let mut prod: Engine<u32> = Engine::new(cfg, instrumentation).with_auto_reap(auto_reap);
    let mut oracle: OracleEngine<u32> =
        OracleEngine::new(cfg, instrumentation).with_auto_reap(auto_reap);
    let mut sub_p = MockSubstrate::default();
    let mut sub_o = MockSubstrate::default();
    let mut sink_p = RecordingSink::new();
    let mut sink_o = RecordingSink::new();
    let mut workload = Lcg::new(seed ^ 0x0BAD_CAFE);
    let mut live: Vec<ProcId> = Vec::new();
    let mut minted: Vec<ProcId> = Vec::new();
    let mut next_pid: u32 = 100;
    let q = cfg.quantum;
    let mut report = DriveReport::default();

    // Spawn a member process in both substrates (identically), initially
    // stopped — the registration contract says the caller suspends it.
    let mut spawn = |sub_p: &mut MockSubstrate, sub_o: &mut MockSubstrate, rng: &mut Lcg| {
        let pid = next_pid;
        next_pid += 1;
        let proc = MockProc {
            cpu: rng.nanos_below(q),
            blocked: false,
            gone: false,
            stopped: true,
        };
        sub_p.procs.insert(pid, proc);
        sub_o.procs.insert(pid, proc);
        (pid, proc.cpu)
    };

    for op in generate(seed, len) {
        match op {
            Op::Add { share } => {
                if live.len() >= 8 {
                    continue;
                }
                let (pid, initial) = spawn(&mut sub_p, &mut sub_o, &mut workload);
                let (id, oid) = match mode {
                    EngineMode::Flat => (
                        prod.add_member(pid, share, initial),
                        oracle.add_member(pid, share, initial),
                    ),
                    EngineMode::Principals => {
                        let id = prod.add_principal(share);
                        let oid = oracle.add_principal(share);
                        let mut members = vec![(pid, initial)];
                        for _ in 0..workload.below(3) {
                            let (extra, extra_cpu) = spawn(&mut sub_p, &mut sub_o, &mut workload);
                            members.push((extra, extra_cpu));
                        }
                        let ch = prod.set_membership(id, &members);
                        let ch_o = oracle.set_membership(oid, &members);
                        assert_eq!(ch, ch_o, "membership change diverges (seed {seed})");
                        (id, oid)
                    }
                };
                assert_eq!(id, oid, "minted principal ids diverge (seed {seed})");
                live.push(id);
                minted.push(id);
            }
            Op::Remove { victim } => {
                if live.is_empty() {
                    continue;
                }
                let id = live.remove(victim as usize % live.len());
                let members = prod.remove_principal(id);
                let members_o = oracle.remove_principal(id);
                assert_eq!(members, members_o, "removed members diverge (seed {seed})");
            }
            Op::SetShare { victim, share } => {
                let pool = if workload.chance(1, 5) {
                    &minted
                } else {
                    &live
                };
                if pool.is_empty() {
                    continue;
                }
                let id = pool[victim as usize % pool.len()];
                assert_eq!(
                    prod.set_share(id, share),
                    oracle.set_share(id, share),
                    "set_share diverges (seed {seed})"
                );
            }
            Op::Quantum { repeat } => {
                for _ in 0..repeat {
                    // Occasionally arrive late (coalesced timer): both
                    // engines must record the overrun.
                    let advance = if workload.chance(1, 10) { q * 3 } else { q };
                    sub_p.now = sub_p.now.saturating_add(advance);
                    sub_o.now = sub_o.now.saturating_add(advance);

                    // Advance the workload model identically in both
                    // substrates: runnable processes burn CPU, some block,
                    // and occasionally one exits.
                    let decisions: Vec<(u32, Nanos, bool, bool)> = sub_p
                        .procs
                        .iter()
                        .filter(|(_, p)| !p.gone)
                        .map(|(&pid, p)| {
                            let burn = if p.stopped {
                                Nanos::ZERO
                            } else {
                                workload.nanos_below(Nanos(q.0 * 3 / 2))
                            };
                            let blocked = workload.chance(1, 6);
                            let exits = workload.chance(1, 40);
                            (pid, burn, blocked, exits)
                        })
                        .collect();
                    for sub in [&mut sub_p, &mut sub_o] {
                        for &(pid, burn, blocked, exits) in &decisions {
                            let p = sub.procs.get_mut(&pid).expect("decided pid exists");
                            p.cpu = p.cpu.saturating_add(burn);
                            p.blocked = blocked;
                            if exits {
                                p.gone = true;
                            }
                        }
                    }

                    let n = prod.begin_quantum(&mut sub_p, &mut sink_p).unwrap();
                    let n_o = oracle.begin_quantum(&mut sub_o, &mut sink_o).unwrap();
                    assert_eq!(n, n_o, "due member counts diverge (seed {seed})");
                    let due: Vec<(ProcId, Vec<u32>)> = prod
                        .due()
                        .iter()
                        .map(|(id, ms)| (id, ms.to_vec()))
                        .collect();
                    assert_eq!(due, oracle.due(), "due lists diverge (seed {seed})");

                    prod.complete_quantum(&mut sub_p, &mut sink_p).unwrap();
                    oracle.complete_quantum(&mut sub_o, &mut sink_o).unwrap();
                    assert_eq!(
                        prod.last_transitions(),
                        oracle.last_transitions(),
                        "transitions diverge (seed {seed})"
                    );
                    assert_eq!(
                        prod.pending_signals(),
                        oracle.pending_signals(),
                        "signals diverge (seed {seed})"
                    );
                    assert_eq!(
                        prod.last_cycle_completed(),
                        oracle.last_cycle_completed(),
                        "cycle boundary diverges (seed {seed})"
                    );
                    report.quanta += 1;
                    report.cycles += u64::from(prod.last_cycle_completed());
                    report.transitions += prod.last_transitions().len() as u64;

                    prod.apply_pending_signals(&mut sub_p, &mut sink_p).unwrap();
                    oracle
                        .apply_pending_signals(&mut sub_o, &mut sink_o)
                        .unwrap();

                    // Auto-reap may have removed principals; forget them.
                    live.retain(|&id| prod.share(id).is_some());
                }
            }
            // Uniprocessor schedules never contain migrations.
            Op::Migrate { .. } => {}
        }

        // Membership refresh (principals mode): reconcile exits and churn
        // a member in/out, identically on both engines.
        if mode == EngineMode::Principals && !live.is_empty() && workload.chance(1, 6) {
            let id = live[workload.below(live.len() as u64) as usize];
            let members = prod.members(id).unwrap_or_default();
            let mut current: Vec<(u32, Nanos)> = members
                .iter()
                .filter(|m| sub_p.procs.get(m).is_some_and(|p| !p.gone))
                .map(|&m| (m, sub_p.procs[&m].cpu))
                .collect();
            if workload.chance(1, 2) {
                let (pid, cpu) = spawn(&mut sub_p, &mut sub_o, &mut workload);
                current.push((pid, cpu));
            } else if current.len() > 1 {
                let k = workload.below(current.len() as u64) as usize;
                current.remove(k);
            }
            let ch = prod.set_membership(id, &current);
            let ch_o = oracle.set_membership(id, &current);
            assert_eq!(ch, ch_o, "refresh change diverges (seed {seed})");
            if let Some(ch) = ch {
                prod.apply_signals(&mut sub_p, &ch.signals, &mut sink_p)
                    .unwrap();
                oracle
                    .apply_signals(&mut sub_o, &ch.signals, &mut sink_o)
                    .unwrap();
            }
        }

        check_engine_state(&prod, &oracle, &minted, seed);
        assert_eq!(
            sink_p.events, sink_o.events,
            "event streams diverge (seed {seed})"
        );
        assert_eq!(sub_p, sub_o, "substrate end states diverge (seed {seed})");
        report.peak_live = report.peak_live.max(live.len());
    }
    report
}

fn check_engine_state(
    prod: &Engine<u32>,
    oracle: &OracleEngine<u32>,
    minted: &[ProcId],
    seed: u64,
) {
    assert_eq!(
        prod.stats(),
        oracle.stats(),
        "EngineStats diverge (seed {seed})"
    );
    assert_eq!(
        prod.cycles(),
        oracle.cycles(),
        "cycle logs diverge (seed {seed})"
    );
    assert_eq!(
        prod.scheduler().cycle_time_remaining().to_bits(),
        oracle.scheduler().cycle_time_remaining().to_bits(),
        "t_c diverges (seed {seed})"
    );
    assert_eq!(
        prod.cycles_completed(),
        oracle.scheduler().cycles_completed()
    );
    for &id in minted {
        assert_eq!(
            prod.share(id),
            oracle.share(id),
            "share diverges (seed {seed})"
        );
        assert_eq!(
            prod.is_eligible(id),
            oracle.is_eligible(id),
            "eligibility diverges (seed {seed})"
        );
        assert_eq!(
            prod.allowance(id).map(f64::to_bits),
            oracle.allowance(id).map(f64::to_bits),
            "allowance diverges (seed {seed})"
        );
        assert_eq!(
            prod.members(id),
            oracle.members(id),
            "member sets diverge (seed {seed})"
        );
    }
}

/// Drive one schedule against an [`AlpsScheduler`] whose shares come from
/// a live 3-level [`TreeShares`] (root → departments → apps → members)
/// under full churn — binds, unbinds, and group-weight changes — holding
/// the *cached* incremental-entitlement path against a from-scratch tree
/// walk ([`TreeShares::share_naive`]) at every bind and every due-member
/// refresh. Any stale epoch cache, broken liveness aggregate, or wrong
/// invalidation diverges and panics with the seed.
///
/// The returned [`DriveReport::fingerprint`] folds every quantum's due
/// list, transitions, and allowance bit patterns. The schedule and every
/// derived share are independent of [`alps_core::DueIndex`] and
/// [`alps_core::MemberStore`], so suites assert the report is
/// byte-identical across {wheel, scan} × {chunked, contiguous}.
pub fn run_tree_schedule(cfg: AlpsConfig, seed: u64, len: usize) -> DriveReport {
    let mut sched = AlpsScheduler::new(cfg);
    // A small quantization scale keeps total shares — and with them the
    // cycle length S·Q — in the regime where short schedules actually
    // cross cycle boundaries, and exercises the `max(1, …)` rounding the
    // production scale never hits.
    let mut ts = TreeShares::new(24);
    // The static grouping skeleton: 2 departments × 3 apps.
    let mut groups: Vec<NodeId> = Vec::new();
    let mut apps: Vec<NodeId> = Vec::new();
    for _ in 0..2 {
        let d = ts.tree_mut().add_group(None, 1);
        groups.push(d);
        for _ in 0..3 {
            let a = ts.tree_mut().add_group(Some(d), 1);
            groups.push(a);
            apps.push(a);
        }
    }
    let mut workload = Lcg::new(seed ^ 0x7EE5_7AE5_0000_0001);
    let mut live: Vec<ProcId> = Vec::new();
    let mut cpu: HashMap<ProcId, Nanos> = HashMap::new();
    let mut now = Nanos::ZERO;
    let q = cfg.quantum;
    let mut report = DriveReport::default();

    for op in generate(seed, len) {
        match op {
            Op::Add { share } => {
                if live.len() >= 12 {
                    continue;
                }
                let initial = workload.nanos_below(q);
                let id = sched.add_process(1, initial);
                let app = apps[share as usize % apps.len()];
                let weight = 1 + share % 4;
                let s = ts.bind(id, Some(app), weight);
                assert_eq!(
                    ts.share_naive(id),
                    Some(s),
                    "bind-time share diverges from the naive walk (seed {seed})"
                );
                sched.set_share(id, s).expect("freshly minted id");
                live.push(id);
                cpu.insert(id, initial);
            }
            Op::Remove { victim } => {
                if live.is_empty() {
                    continue;
                }
                let id = live.remove(victim as usize % live.len());
                assert!(
                    ts.unbind(id).is_some(),
                    "live member is bound (seed {seed})"
                );
                assert!(ts.unbind(id).is_none(), "double unbind is a no-op");
                sched.remove_process(id).expect("live member is registered");
            }
            Op::SetShare { victim, share } => {
                // Reinterpreted as a group-weight change: the tree is the
                // only share authority in this driver.
                let g = groups[victim as usize % groups.len()];
                assert!(
                    ts.tree_mut().set_share(g, 1 + share % 5),
                    "skeleton groups are never removed (seed {seed})"
                );
            }
            Op::Quantum { repeat } => {
                for _ in 0..repeat {
                    now = now.saturating_add(q);
                    let due = sched.begin_quantum();
                    let obs: Vec<(ProcId, Observation)> = due
                        .iter()
                        .map(|&id| {
                            let c = cpu.get_mut(&id).expect("due member has a cpu counter");
                            *c = c.saturating_add(workload.nanos_below(Nanos(q.0 * 3 / 2)));
                            (
                                id,
                                Observation {
                                    total_cpu: *c,
                                    blocked: workload.chance(1, 6),
                                },
                            )
                        })
                        .collect();
                    let out = sched.complete_quantum(&obs, now);
                    // Lazy refresh, exactly as the engine does it: due
                    // members only, between quanta. The cached answer must
                    // match a from-scratch walk every single time.
                    for &id in &due {
                        let naive = ts.share_naive(id);
                        match ts.refresh(id) {
                            Some(new) => {
                                assert_eq!(
                                    naive,
                                    Some(new),
                                    "cached refresh diverges from the naive walk (seed {seed})"
                                );
                                sched.set_share(id, new).expect("due member is live");
                            }
                            None => {
                                if naive.is_some() {
                                    assert_eq!(
                                        naive,
                                        sched.share(id),
                                        "in-sync binding disagrees with the naive walk (seed {seed})"
                                    );
                                }
                            }
                        }
                    }
                    fold_quantum(&mut report.fingerprint, &due, &out);
                    report.quanta += 1;
                    report.cycles += u64::from(out.cycle_completed);
                    report.transitions += out.transitions.len() as u64;
                }
            }
            // Uniprocessor schedules never contain migrations.
            Op::Migrate { .. } => {}
        }
        for &id in &live {
            if let Some(a) = sched.allowance(id) {
                fold(&mut report.fingerprint, a.to_bits());
            }
        }
        report.peak_live = report.peak_live.max(live.len());
    }
    report
}

/// Drive identical quantum schedules against a scheduler whose shares come
/// from a *static, fully balanced* 3-level tree (2 departments × 3 apps ×
/// 2 members, all weights equal) and a flat scheduler given the same
/// integer shares directly, asserting byte-identical due lists,
/// transitions, cycle boundaries, and allowance bit patterns every
/// quantum — the hierarchy layer must be a semantic no-op when
/// entitlements are static.
///
/// Balanced churn keeps the tree epoch moving: members are periodically
/// replaced by an equal-weight twin under the same app, so the cached
/// entitlement path re-derives shares (cache invalidated) and must land
/// on the same quantized value (refresh returns `None`); the flat side
/// mirrors the remove/add with the same constant share.
pub fn run_tree_flat_equivalence(cfg: AlpsConfig, seed: u64, len: usize) -> DriveReport {
    let mut tree_s = AlpsScheduler::new(cfg);
    let mut flat_s = AlpsScheduler::new(cfg);
    // Small scale for short cycles (see `run_tree_schedule`); 24 divides
    // evenly by the 12-member balanced population, so every member's
    // quantized share is exactly 2.
    let mut ts = TreeShares::new(24);
    let mut apps: Vec<NodeId> = Vec::new();
    for _ in 0..2 {
        let d = ts.tree_mut().add_group(None, 1);
        for _ in 0..3 {
            apps.push(ts.tree_mut().add_group(Some(d), 1));
        }
    }
    let mut workload = Lcg::new(seed ^ 0x7EE5_F1A7_0000_0002);
    let q = cfg.quantum;
    let mut report = DriveReport::default();

    // Build the full population, mirroring every call: the tree side
    // registers with the bind-time share, the flat side with the same
    // value. Earlier members' bind-time shares are stale by the time the
    // population is complete, so a settle pass re-derives them — applying
    // the identical correction to both sides.
    let mut live: Vec<(ProcId, ProcId, Nanos)> = Vec::new();
    for k in 0..12 {
        let initial = workload.nanos_below(q);
        let id = tree_s.add_process(1, initial);
        let s = ts.bind(id, Some(apps[k % apps.len()]), 1);
        tree_s.set_share(id, s).expect("fresh id");
        let fid = flat_s.add_process(1, initial);
        flat_s.set_share(fid, s).expect("fresh id");
        assert_eq!(id, fid, "minted ids diverge (seed {seed})");
        live.push((id, fid, initial));
    }
    let balanced = ts.share_naive(live[0].0).expect("bound");
    for &(id, fid, _) in &live {
        if let Some(new) = ts.refresh(id) {
            tree_s.set_share(id, new).expect("live");
            flat_s.set_share(fid, new).expect("live");
        }
        // A fully balanced tree gives every member the same entitlement.
        assert_eq!(ts.share_naive(id), Some(balanced), "balanced (seed {seed})");
        assert_eq!(tree_s.share(id), Some(balanced), "settled (seed {seed})");
    }

    let mut now = Nanos::ZERO;
    for step in 0..len {
        // Balanced churn: replace one member with an equal twin under the
        // same app. Entitlements are unchanged, but the tree epoch moves,
        // so the cached path must re-derive — and land exactly where the
        // flat side's constant share already is.
        if workload.chance(1, 4) {
            let k = workload.below(live.len() as u64) as usize;
            let (id, fid, _) = live[k];
            let app = apps[k % apps.len()];
            ts.unbind(id).expect("live member is bound");
            tree_s.remove_process(id).expect("live");
            flat_s.remove_process(fid).expect("live");
            let initial = workload.nanos_below(q);
            let nid = tree_s.add_process(1, initial);
            let s = ts.bind(nid, Some(app), 1);
            assert_eq!(
                s, balanced,
                "full-population bind lands on the balanced share (seed {seed}, step {step})"
            );
            tree_s.set_share(nid, s).expect("fresh id");
            let nfid = flat_s.add_process(1, initial);
            flat_s.set_share(nfid, s).expect("fresh id");
            assert_eq!(nid, nfid, "minted ids diverge (seed {seed})");
            live[k] = (nid, nfid, initial);
        }
        now = now.saturating_add(q);
        let due_t = tree_s.begin_quantum();
        let due_f = flat_s.begin_quantum();
        assert_eq!(due_t, due_f, "due lists diverge (seed {seed}, step {step})");
        let obs: Vec<(ProcId, Observation)> = due_t
            .iter()
            .map(|&id| {
                let c = &mut live
                    .iter_mut()
                    .find(|(t, _, _)| *t == id)
                    .expect("due member is live")
                    .2;
                *c = c.saturating_add(workload.nanos_below(Nanos(q.0 * 3 / 2)));
                (
                    id,
                    Observation {
                        total_cpu: *c,
                        blocked: workload.chance(1, 6),
                    },
                )
            })
            .collect();
        let out_t = tree_s.complete_quantum(&obs, now);
        let out_f = flat_s.complete_quantum(&obs, now);
        assert_eq!(
            out_t.transitions, out_f.transitions,
            "transitions diverge (seed {seed}, step {step})"
        );
        assert_eq!(
            out_t.cycle_completed, out_f.cycle_completed,
            "cycle boundary diverges (seed {seed}, step {step})"
        );
        // The tree layer is quiescent: every refresh re-derives the same
        // balanced share, so nothing ever feeds back into the scheduler.
        for &id in &due_t {
            assert_eq!(
                ts.refresh(id),
                None,
                "static balanced tree changed a share (seed {seed}, step {step})"
            );
        }
        for &(id, fid, _) in &live {
            assert_eq!(
                tree_s.allowance(id).map(f64::to_bits),
                flat_s.allowance(fid).map(f64::to_bits),
                "allowance diverges (seed {seed}, step {step})"
            );
        }
        fold_quantum(&mut report.fingerprint, &due_t, &out_t);
        report.quanta += 1;
        report.cycles += u64::from(out_t.cycle_completed);
        report.transitions += out_t.transitions.len() as u64;
        report.peak_live = report.peak_live.max(live.len());
    }
    report
}

// ----------------------------------------------------------------------
// SMP mode
// ----------------------------------------------------------------------

/// One mocked process on an M-CPU machine: consumption is recorded per
/// CPU and merged at read time, exactly as a real collector sums per-CPU
/// cputime for a thread that migrated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmpMockProc {
    /// Per-CPU consumption, indexed by CPU.
    pub split: Vec<Nanos>,
    /// The CPU the process currently runs on (where burn is charged).
    pub on: usize,
    /// Observed-blocked flag (§2.4 input).
    pub blocked: bool,
    /// Whether the process has exited.
    pub gone: bool,
    /// Whether the process is currently stopped.
    pub stopped: bool,
}

impl SmpMockProc {
    /// The merged cumulative CPU total: the sum across CPUs.
    pub fn merged(&self) -> Nanos {
        self.split.iter().copied().sum()
    }
}

/// A deterministic M-CPU [`Substrate`]: `read` reports the *merged*
/// per-member total regardless of which CPUs ran the member — the only
/// accounting ALPS ever sees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmpMockSubstrate {
    /// The substrate clock.
    pub now: Nanos,
    /// CPU count (M ≥ 1).
    pub cpus: usize,
    /// Member state by pid.
    pub procs: BTreeMap<u32, SmpMockProc>,
}

impl SmpMockSubstrate {
    /// An empty M-CPU substrate.
    pub fn new(cpus: usize) -> Self {
        assert!(cpus >= 1);
        SmpMockSubstrate {
            now: Nanos::ZERO,
            cpus,
            procs: BTreeMap::new(),
        }
    }
}

impl Substrate for SmpMockSubstrate {
    type Member = u32;
    type Error = Infallible;

    fn now(&mut self) -> Nanos {
        self.now
    }

    fn read(&mut self, member: u32) -> Result<Option<Observation>, Infallible> {
        Ok(self.procs.get(&member).and_then(|p| {
            (!p.gone).then_some(Observation {
                total_cpu: p.merged(),
                blocked: p.blocked,
            })
        }))
    }

    fn deliver(&mut self, member: u32, signal: Signal) -> Result<bool, Infallible> {
        match self.procs.get_mut(&member) {
            Some(p) if !p.gone => {
                p.stopped = signal == Signal::Stop;
                Ok(true)
            }
            _ => Ok(false),
        }
    }
}

/// Per-process consumption bookkeeping for the core-level SMP drivers: a
/// per-CPU split, the CPU currently charged, and an independently
/// maintained scalar total the split must always sum to.
struct SmpCpuState {
    split: Vec<Nanos>,
    on: usize,
    scalar: Nanos,
}

impl SmpCpuState {
    fn new(cpus: usize, initial: Nanos) -> Self {
        let mut split = vec![Nanos::ZERO; cpus];
        split[0] = initial;
        SmpCpuState {
            split,
            on: 0,
            scalar: initial,
        }
    }

    /// Charge `burn` on the current CPU; return the merged total after
    /// asserting it still equals the scalar (conservation).
    fn burn(&mut self, burn: Nanos, seed: u64) -> Nanos {
        self.split[self.on] = self.split[self.on].saturating_add(burn);
        self.scalar = self.scalar.saturating_add(burn);
        let merged: Nanos = self.split.iter().copied().sum();
        assert_eq!(
            merged, self.scalar,
            "per-CPU split does not sum to the total (seed {seed})"
        );
        merged
    }
}

/// Fold a quantum's observables (due list, transitions, cycle flag) into
/// a fingerprint, so suites can compare whole runs for byte-identity.
fn fold_quantum(fp: &mut u64, due: &[ProcId], out: &alps_core::QuantumOutcome) {
    for &id in due {
        fold(fp, (id.index() as u64) << 32 | u64::from(id.generation()));
    }
    fold(fp, 0xD0E5_0000 | due.len() as u64);
    for t in &out.transitions {
        let (tag, id) = match *t {
            alps_core::Transition::Resume(id) => (1u64, id),
            alps_core::Transition::Suspend(id) => (2u64, id),
        };
        fold(
            fp,
            tag << 62 | (id.index() as u64) << 32 | u64::from(id.generation()),
        );
    }
    fold(fp, u64::from(out.cycle_completed));
}

/// Drive one SMP schedule ([`generate_smp`]) against `AlpsScheduler` and
/// [`OracleScheduler`], feeding both the *merged* per-process totals of
/// an M-CPU consumption model with migration churn; lockstep equality is
/// asserted after every op and split/total conservation at every charge.
///
/// The schedule, the workload draws, and therefore every observation fed
/// to the schedulers are independent of `cpus` — migrations only move
/// *where* burn is charged — so the returned [`DriveReport`]
/// (fingerprint included) is identical for every M. Suites assert
/// exactly that.
pub fn run_core_schedule_smp(cfg: AlpsConfig, seed: u64, len: usize, cpus: usize) -> DriveReport {
    let mut prod = AlpsScheduler::new(cfg);
    let mut oracle = OracleScheduler::new(cfg);
    let mut workload = Lcg::new(seed ^ 0x0051_3D0C_7E57_BEEF);
    let mut live: Vec<ProcId> = Vec::new();
    let mut minted: Vec<ProcId> = Vec::new();
    let mut cpu: HashMap<ProcId, SmpCpuState> = HashMap::new();
    let mut now = Nanos::ZERO;
    let q = cfg.quantum;
    let mut report = DriveReport::default();

    for op in generate_smp(seed, len) {
        match op {
            Op::Add { share } => {
                if live.len() >= 12 {
                    continue;
                }
                let initial = workload.nanos_below(q);
                let id = prod.add_process(share, initial);
                let oid = oracle.add_process(share, initial);
                assert_eq!(id, oid, "minted ids diverge (seed {seed})");
                live.push(id);
                minted.push(id);
                cpu.insert(id, SmpCpuState::new(cpus, initial));
            }
            Op::Remove { victim } => {
                if live.is_empty() {
                    continue;
                }
                let id = live.remove(victim as usize % live.len());
                assert_eq!(
                    prod.remove_process(id),
                    oracle.remove_process(id),
                    "remove diverges (seed {seed})"
                );
            }
            Op::SetShare { victim, share } => {
                if live.is_empty() {
                    continue;
                }
                let id = live[victim as usize % live.len()];
                assert_eq!(
                    prod.set_share(id, share),
                    oracle.set_share(id, share),
                    "set_share diverges (seed {seed})"
                );
            }
            Op::Migrate { victim, cpu: c } => {
                if live.is_empty() {
                    continue;
                }
                let id = live[victim as usize % live.len()];
                cpu.get_mut(&id).expect("live process has CPU state").on = c as usize % cpus;
            }
            Op::Quantum { repeat } => {
                for _ in 0..repeat {
                    now = now.saturating_add(q);
                    let due = prod.begin_quantum();
                    let due_o = oracle.begin_quantum();
                    assert_eq!(due, due_o, "due lists diverge (seed {seed})");
                    let obs: Vec<(ProcId, Observation)> = due
                        .iter()
                        .map(|&id| {
                            let burn = workload.nanos_below(Nanos(q.0 * 3 / 2));
                            let merged = cpu
                                .get_mut(&id)
                                .expect("due process has CPU state")
                                .burn(burn, seed);
                            let blocked = workload.chance(1, 6);
                            (
                                id,
                                Observation {
                                    total_cpu: merged,
                                    blocked,
                                },
                            )
                        })
                        .collect();
                    let out = prod.complete_quantum(&obs, now);
                    let out_o = oracle.complete_quantum(&obs, now);
                    assert_eq!(
                        out.transitions, out_o.transitions,
                        "transitions diverge (seed {seed})"
                    );
                    assert_eq!(
                        out.cycle_completed, out_o.cycle_completed,
                        "cycle boundary diverges (seed {seed})"
                    );
                    assert_eq!(
                        out.cycle_record, out_o.cycle_record,
                        "cycle records diverge (seed {seed})"
                    );
                    fold_quantum(&mut report.fingerprint, &due, &out);
                    report.quanta += 1;
                    report.cycles += u64::from(out.cycle_completed);
                    report.transitions += out.transitions.len() as u64;
                }
            }
        }
        check_core_state(&prod, &oracle, &minted, seed);
        for &id in &minted {
            if let Some(a) = prod.allowance(id) {
                fold(&mut report.fingerprint, a.to_bits());
            }
        }
        report.peak_live = report.peak_live.max(live.len());
    }
    report
}

/// Drive one SMP schedule against two production `AlpsScheduler`s that
/// differ only in [`alps_core::DueIndex`] (deadline wheel vs reference
/// scan), asserting they stay lockstep-identical on merged M-CPU
/// accounting with migration churn.
pub fn run_core_due_index_lockstep(
    cfg: AlpsConfig,
    seed: u64,
    len: usize,
    cpus: usize,
) -> DriveReport {
    use alps_core::DueIndex;
    let mut wheel = AlpsScheduler::new(cfg.with_due_index(DueIndex::Wheel));
    let mut scan = AlpsScheduler::new(cfg.with_due_index(DueIndex::Scan));
    let mut workload = Lcg::new(seed ^ 0x0D0E_1D00_5EED_0001);
    let mut live: Vec<ProcId> = Vec::new();
    let mut minted: Vec<ProcId> = Vec::new();
    let mut cpu: HashMap<ProcId, SmpCpuState> = HashMap::new();
    let mut now = Nanos::ZERO;
    let q = cfg.quantum;
    let mut report = DriveReport::default();

    for op in generate_smp(seed, len) {
        match op {
            Op::Add { share } => {
                if live.len() >= 12 {
                    continue;
                }
                let initial = workload.nanos_below(q);
                let id = wheel.add_process(share, initial);
                let sid = scan.add_process(share, initial);
                assert_eq!(id, sid, "minted ids diverge (seed {seed})");
                live.push(id);
                minted.push(id);
                cpu.insert(id, SmpCpuState::new(cpus, initial));
            }
            Op::Remove { victim } => {
                if live.is_empty() {
                    continue;
                }
                let id = live.remove(victim as usize % live.len());
                assert_eq!(
                    wheel.remove_process(id),
                    scan.remove_process(id),
                    "remove diverges (seed {seed})"
                );
            }
            Op::SetShare { victim, share } => {
                if live.is_empty() {
                    continue;
                }
                let id = live[victim as usize % live.len()];
                assert_eq!(
                    wheel.set_share(id, share),
                    scan.set_share(id, share),
                    "set_share diverges (seed {seed})"
                );
            }
            Op::Migrate { victim, cpu: c } => {
                if live.is_empty() {
                    continue;
                }
                let id = live[victim as usize % live.len()];
                cpu.get_mut(&id).expect("live process has CPU state").on = c as usize % cpus;
            }
            Op::Quantum { repeat } => {
                for _ in 0..repeat {
                    now = now.saturating_add(q);
                    let due = wheel.begin_quantum();
                    let due_s = scan.begin_quantum();
                    assert_eq!(due, due_s, "due lists diverge (seed {seed})");
                    let obs: Vec<(ProcId, Observation)> = due
                        .iter()
                        .map(|&id| {
                            let burn = workload.nanos_below(Nanos(q.0 * 3 / 2));
                            let merged = cpu
                                .get_mut(&id)
                                .expect("due process has CPU state")
                                .burn(burn, seed);
                            let blocked = workload.chance(1, 6);
                            (
                                id,
                                Observation {
                                    total_cpu: merged,
                                    blocked,
                                },
                            )
                        })
                        .collect();
                    let out = wheel.complete_quantum(&obs, now);
                    let out_s = scan.complete_quantum(&obs, now);
                    assert_eq!(
                        out.transitions, out_s.transitions,
                        "transitions diverge (seed {seed})"
                    );
                    assert_eq!(
                        out.cycle_completed, out_s.cycle_completed,
                        "cycle boundary diverges (seed {seed})"
                    );
                    fold_quantum(&mut report.fingerprint, &due, &out);
                    report.quanta += 1;
                    report.cycles += u64::from(out.cycle_completed);
                    report.transitions += out.transitions.len() as u64;
                }
            }
        }
        for &id in &minted {
            assert_eq!(
                wheel.allowance(id).map(f64::to_bits),
                scan.allowance(id).map(f64::to_bits),
                "allowance diverges (seed {seed})"
            );
            assert_eq!(
                wheel.is_eligible(id),
                scan.is_eligible(id),
                "eligibility diverges (seed {seed})"
            );
        }
        report.peak_live = report.peak_live.max(live.len());
    }
    report
}

/// Drive one SMP schedule against `alps_core::Engine` and
/// [`OracleEngine`] over twin [`SmpMockSubstrate`]s (flat principals,
/// auto-reap): the engines see only merged per-member totals while the
/// workload migrates processes between CPUs underneath them.
///
/// Like [`run_core_schedule_smp`], everything the engines observe is
/// independent of `cpus`, so the report (fingerprint included) must be
/// identical for every M.
pub fn run_engine_schedule_smp(
    cfg: AlpsConfig,
    instrumentation: Instrumentation,
    seed: u64,
    len: usize,
    cpus: usize,
) -> DriveReport {
    let mut prod: Engine<u32> = Engine::new(cfg, instrumentation).with_auto_reap(true);
    let mut oracle: OracleEngine<u32> =
        OracleEngine::new(cfg, instrumentation).with_auto_reap(true);
    let mut sub_p = SmpMockSubstrate::new(cpus);
    let mut sub_o = SmpMockSubstrate::new(cpus);
    let mut sink_p = RecordingSink::new();
    let mut sink_o = RecordingSink::new();
    let mut workload = Lcg::new(seed ^ 0x0BAD_CAFE);
    let mut live: Vec<ProcId> = Vec::new();
    let mut minted: Vec<ProcId> = Vec::new();
    let mut next_pid: u32 = 100;
    let q = cfg.quantum;
    let mut report = DriveReport::default();

    let mut spawn = |sub_p: &mut SmpMockSubstrate, sub_o: &mut SmpMockSubstrate, rng: &mut Lcg| {
        let pid = next_pid;
        next_pid += 1;
        let mut split = vec![Nanos::ZERO; cpus];
        split[0] = rng.nanos_below(q);
        let proc = SmpMockProc {
            split,
            on: 0,
            blocked: false,
            gone: false,
            stopped: true,
        };
        let initial = proc.merged();
        sub_p.procs.insert(pid, proc.clone());
        sub_o.procs.insert(pid, proc);
        (pid, initial)
    };

    for op in generate_smp(seed, len) {
        match op {
            Op::Add { share } => {
                if live.len() >= 8 {
                    continue;
                }
                let (pid, initial) = spawn(&mut sub_p, &mut sub_o, &mut workload);
                let id = prod.add_member(pid, share, initial);
                let oid = oracle.add_member(pid, share, initial);
                assert_eq!(id, oid, "minted principal ids diverge (seed {seed})");
                live.push(id);
                minted.push(id);
            }
            Op::Remove { victim } => {
                if live.is_empty() {
                    continue;
                }
                let id = live.remove(victim as usize % live.len());
                assert_eq!(
                    prod.remove_principal(id),
                    oracle.remove_principal(id),
                    "removed members diverge (seed {seed})"
                );
            }
            Op::SetShare { victim, share } => {
                if live.is_empty() {
                    continue;
                }
                let id = live[victim as usize % live.len()];
                assert_eq!(
                    prod.set_share(id, share),
                    oracle.set_share(id, share),
                    "set_share diverges (seed {seed})"
                );
            }
            Op::Migrate { victim, cpu } => {
                if live.is_empty() {
                    continue;
                }
                let id = live[victim as usize % live.len()];
                let target = cpu as usize % cpus;
                for m in prod.members(id).unwrap_or_default() {
                    for sub in [&mut sub_p, &mut sub_o] {
                        if let Some(p) = sub.procs.get_mut(&m) {
                            p.on = target;
                        }
                    }
                }
            }
            Op::Quantum { repeat } => {
                for _ in 0..repeat {
                    let advance = if workload.chance(1, 10) { q * 3 } else { q };
                    sub_p.now = sub_p.now.saturating_add(advance);
                    sub_o.now = sub_o.now.saturating_add(advance);

                    // Advance the workload model identically in both
                    // substrates: burn lands on each process's current
                    // CPU; the engines only ever see the merged sum.
                    let decisions: Vec<(u32, Nanos, bool, bool)> = sub_p
                        .procs
                        .iter()
                        .filter(|(_, p)| !p.gone)
                        .map(|(&pid, p)| {
                            let burn = if p.stopped {
                                Nanos::ZERO
                            } else {
                                workload.nanos_below(Nanos(q.0 * 3 / 2))
                            };
                            let blocked = workload.chance(1, 6);
                            let exits = workload.chance(1, 40);
                            (pid, burn, blocked, exits)
                        })
                        .collect();
                    for sub in [&mut sub_p, &mut sub_o] {
                        for &(pid, burn, blocked, exits) in &decisions {
                            let p = sub.procs.get_mut(&pid).expect("decided pid exists");
                            let on = p.on;
                            p.split[on] = p.split[on].saturating_add(burn);
                            p.blocked = blocked;
                            if exits {
                                p.gone = true;
                            }
                        }
                    }

                    let n = prod.begin_quantum(&mut sub_p, &mut sink_p).unwrap();
                    let n_o = oracle.begin_quantum(&mut sub_o, &mut sink_o).unwrap();
                    assert_eq!(n, n_o, "due member counts diverge (seed {seed})");
                    prod.complete_quantum(&mut sub_p, &mut sink_p).unwrap();
                    oracle.complete_quantum(&mut sub_o, &mut sink_o).unwrap();
                    assert_eq!(
                        prod.last_transitions(),
                        oracle.last_transitions(),
                        "transitions diverge (seed {seed})"
                    );
                    assert_eq!(
                        prod.pending_signals(),
                        oracle.pending_signals(),
                        "signals diverge (seed {seed})"
                    );
                    fold(&mut report.fingerprint, n as u64);
                    for t in prod.last_transitions() {
                        let (tag, id) = match *t {
                            alps_core::Transition::Resume(id) => (1u64, id),
                            alps_core::Transition::Suspend(id) => (2u64, id),
                        };
                        fold(
                            &mut report.fingerprint,
                            tag << 62 | (id.index() as u64) << 32 | u64::from(id.generation()),
                        );
                    }
                    report.quanta += 1;
                    report.cycles += u64::from(prod.last_cycle_completed());
                    report.transitions += prod.last_transitions().len() as u64;

                    prod.apply_pending_signals(&mut sub_p, &mut sink_p).unwrap();
                    oracle
                        .apply_pending_signals(&mut sub_o, &mut sink_o)
                        .unwrap();
                    live.retain(|&id| prod.share(id).is_some());
                }
            }
        }

        check_engine_state(&prod, &oracle, &minted, seed);
        assert_eq!(
            sink_p.events, sink_o.events,
            "event streams diverge (seed {seed})"
        );
        assert_eq!(sub_p, sub_o, "substrate end states diverge (seed {seed})");
        for &id in &minted {
            if let Some(a) = prod.allowance(id) {
                fold(&mut report.fingerprint, a.to_bits());
            }
        }
        report.peak_live = report.peak_live.max(live.len());
    }
    report
}
