//! Differential drivers: oracle and production side by side.
//!
//! Each driver takes a configuration and a seed, generates a schedule
//! ([`crate::schedule::generate`]), and applies every op to both
//! implementations, asserting byte-identical externally visible state
//! after each step: minted ids, due lists, transitions, signals, events,
//! cycle records, aggregate counters, and per-process `f64` allowances
//! compared by bit pattern. Any divergence panics with the seed, so a
//! failure is replayable.

use core::convert::Infallible;
use std::collections::{BTreeMap, HashMap};

use alps_core::{
    AlpsConfig, AlpsScheduler, Engine, Instrumentation, Nanos, Observation, ProcId, RecordingSink,
    Signal, Substrate,
};

use crate::engine::OracleEngine;
use crate::oracle::OracleScheduler;
use crate::schedule::{generate, generate_smp, Lcg, Op};

/// What a differential run covered, so suites can assert the schedules
/// actually reached the interesting regimes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriveReport {
    /// Quanta driven.
    pub quanta: u64,
    /// Cycle boundaries crossed.
    pub cycles: u64,
    /// Eligibility transitions observed.
    pub transitions: u64,
    /// Peak live population.
    pub peak_live: usize,
    /// FNV-style fold of every per-quantum observable (due ids,
    /// transitions, allowance bit patterns). The SMP drivers fill this in
    /// so suites can assert that two runs saw *byte-identical* scheduler
    /// behavior — e.g. that the engine's outputs are invariant in the CPU
    /// count. The uniprocessor drivers leave it 0.
    pub fingerprint: u64,
}

/// Fold one word into a [`DriveReport::fingerprint`].
fn fold(fp: &mut u64, word: u64) {
    *fp = fp.wrapping_mul(0x0000_0100_0000_01B3) ^ word;
}

/// Drive one schedule against `AlpsScheduler` and [`OracleScheduler`],
/// asserting lockstep equality after every op. Panics (with `seed` in the
/// message) on any divergence.
pub fn run_core_schedule(cfg: AlpsConfig, seed: u64, len: usize) -> DriveReport {
    let mut prod = AlpsScheduler::new(cfg);
    let mut oracle = OracleScheduler::new(cfg);
    let mut workload = Lcg::new(seed ^ 0x00C0_FFEE);
    let mut live: Vec<ProcId> = Vec::new();
    let mut minted: Vec<ProcId> = Vec::new();
    let mut cpu: HashMap<ProcId, Nanos> = HashMap::new();
    let mut now = Nanos::ZERO;
    let q = cfg.quantum;
    let mut report = DriveReport::default();

    for op in generate(seed, len) {
        match op {
            Op::Add { share } => {
                if live.len() >= 12 {
                    continue;
                }
                let initial = workload.nanos_below(q);
                let id = prod.add_process(share, initial);
                let oid = oracle.add_process(share, initial);
                assert_eq!(id, oid, "minted ids diverge (seed {seed})");
                live.push(id);
                minted.push(id);
                cpu.insert(id, initial);
            }
            Op::Remove { victim } => {
                if live.is_empty() {
                    continue;
                }
                let id = live.remove(victim as usize % live.len());
                assert_eq!(
                    prod.remove_process(id),
                    oracle.remove_process(id),
                    "remove diverges (seed {seed})"
                );
                // A second removal of the same id must be a stale no-op on
                // both sides.
                assert_eq!(prod.remove_process(id), None);
                assert_eq!(oracle.remove_process(id), None);
            }
            Op::SetShare { victim, share } => {
                // Mostly target live processes; sometimes a stale id, which
                // must error identically.
                let pool = if workload.chance(1, 5) {
                    &minted
                } else {
                    &live
                };
                if pool.is_empty() {
                    continue;
                }
                let id = pool[victim as usize % pool.len()];
                assert_eq!(
                    prod.set_share(id, share),
                    oracle.set_share(id, share),
                    "set_share diverges (seed {seed})"
                );
            }
            Op::Quantum { repeat } => {
                for _ in 0..repeat {
                    now = now.saturating_add(q);
                    let due = prod.begin_quantum();
                    let due_o = oracle.begin_quantum();
                    assert_eq!(due, due_o, "due lists diverge (seed {seed})");
                    // Occasionally remove a due process between begin and
                    // complete: its observation becomes stale and both
                    // sides must skip it without charge.
                    if !due.is_empty() && workload.chance(1, 8) {
                        let id = due[workload.below(due.len() as u64) as usize];
                        live.retain(|&x| x != id);
                        assert_eq!(prod.remove_process(id), oracle.remove_process(id));
                    }
                    let obs: Vec<(ProcId, Observation)> = due
                        .iter()
                        .map(|&id| {
                            let c = cpu.get_mut(&id).expect("due process has a cpu counter");
                            *c = c.saturating_add(workload.nanos_below(Nanos(q.0 * 3 / 2)));
                            let blocked = workload.chance(1, 6);
                            (
                                id,
                                Observation {
                                    total_cpu: *c,
                                    blocked,
                                },
                            )
                        })
                        .collect();
                    let out = prod.complete_quantum(&obs, now);
                    let out_o = oracle.complete_quantum(&obs, now);
                    assert_eq!(
                        out.transitions, out_o.transitions,
                        "transitions diverge (seed {seed})"
                    );
                    assert_eq!(
                        out.cycle_completed, out_o.cycle_completed,
                        "cycle boundary diverges (seed {seed})"
                    );
                    assert_eq!(
                        out.cycle_record, out_o.cycle_record,
                        "cycle records diverge (seed {seed})"
                    );
                    report.quanta += 1;
                    report.cycles += u64::from(out.cycle_completed);
                    report.transitions += out.transitions.len() as u64;
                }
            }
            // Uniprocessor schedules never contain migrations.
            Op::Migrate { .. } => {}
        }
        check_core_state(&prod, &oracle, &minted, seed);
        report.peak_live = report.peak_live.max(live.len());
    }
    report
}

/// Assert every observable aggregate and per-process value matches,
/// including `f64`s by bit pattern.
fn check_core_state(prod: &AlpsScheduler, oracle: &OracleScheduler, minted: &[ProcId], seed: u64) {
    assert_eq!(prod.len(), oracle.len(), "len diverges (seed {seed})");
    assert_eq!(
        prod.total_shares(),
        oracle.total_shares(),
        "total_shares diverges (seed {seed})"
    );
    assert_eq!(
        prod.cycles_completed(),
        oracle.cycles_completed(),
        "cycles_completed diverges (seed {seed})"
    );
    assert_eq!(
        prod.invocations(),
        oracle.invocations(),
        "invocations diverge (seed {seed})"
    );
    assert_eq!(
        prod.cycle_time_remaining().to_bits(),
        oracle.cycle_time_remaining().to_bits(),
        "t_c diverges (seed {seed}): {} vs {}",
        prod.cycle_time_remaining(),
        oracle.cycle_time_remaining()
    );
    for &id in minted {
        assert_eq!(
            prod.share(id),
            oracle.share(id),
            "share diverges (seed {seed})"
        );
        assert_eq!(
            prod.is_eligible(id),
            oracle.is_eligible(id),
            "eligibility diverges (seed {seed})"
        );
        assert_eq!(
            prod.allowance(id).map(f64::to_bits),
            oracle.allowance(id).map(f64::to_bits),
            "allowance diverges for {id:?} (seed {seed}): {:?} vs {:?}",
            prod.allowance(id),
            oracle.allowance(id)
        );
    }
}

/// One mocked process in a [`MockSubstrate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MockProc {
    /// Cumulative CPU time.
    pub cpu: Nanos,
    /// Observed-blocked flag (§2.4 input).
    pub blocked: bool,
    /// Whether the process has exited (reads return `None`, deliveries
    /// bounce).
    pub gone: bool,
    /// Whether the process is currently stopped (actuation state; the
    /// workload model does not advance stopped processes).
    pub stopped: bool,
}

/// A deterministic in-memory [`Substrate`] driven by the harness.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MockSubstrate {
    /// The substrate clock.
    pub now: Nanos,
    /// Member state by pid.
    pub procs: BTreeMap<u32, MockProc>,
}

impl Substrate for MockSubstrate {
    type Member = u32;
    type Error = Infallible;

    fn now(&mut self) -> Nanos {
        self.now
    }

    fn read(&mut self, member: u32) -> Result<Option<Observation>, Infallible> {
        Ok(self.procs.get(&member).and_then(|p| {
            (!p.gone).then_some(Observation {
                total_cpu: p.cpu,
                blocked: p.blocked,
            })
        }))
    }

    fn deliver(&mut self, member: u32, signal: Signal) -> Result<bool, Infallible> {
        match self.procs.get_mut(&member) {
            Some(p) if !p.gone => {
                p.stopped = signal == Signal::Stop;
                Ok(true)
            }
            _ => Ok(false),
        }
    }
}

/// Whether an engine schedule drives flat single-member principals (the
/// per-process supervisor shape, auto-reap on) or multi-member principals
/// with §5 membership refreshes (auto-reap off).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    /// One member per principal; exits are auto-reaped.
    Flat,
    /// 1–3 members per principal; membership reconciled by refresh ops.
    Principals,
}

/// Drive one schedule against `alps_core::Engine` and [`OracleEngine`]
/// over twin [`MockSubstrate`]s, asserting identical due lists,
/// transitions, signals, event streams, stats, cycle logs, and substrate
/// end states after every quantum.
pub fn run_engine_schedule(
    cfg: AlpsConfig,
    instrumentation: Instrumentation,
    mode: EngineMode,
    seed: u64,
    len: usize,
) -> DriveReport {
    let auto_reap = mode == EngineMode::Flat;
    let mut prod: Engine<u32> = Engine::new(cfg, instrumentation).with_auto_reap(auto_reap);
    let mut oracle: OracleEngine<u32> =
        OracleEngine::new(cfg, instrumentation).with_auto_reap(auto_reap);
    let mut sub_p = MockSubstrate::default();
    let mut sub_o = MockSubstrate::default();
    let mut sink_p = RecordingSink::new();
    let mut sink_o = RecordingSink::new();
    let mut workload = Lcg::new(seed ^ 0x0BAD_CAFE);
    let mut live: Vec<ProcId> = Vec::new();
    let mut minted: Vec<ProcId> = Vec::new();
    let mut next_pid: u32 = 100;
    let q = cfg.quantum;
    let mut report = DriveReport::default();

    // Spawn a member process in both substrates (identically), initially
    // stopped — the registration contract says the caller suspends it.
    let mut spawn = |sub_p: &mut MockSubstrate, sub_o: &mut MockSubstrate, rng: &mut Lcg| {
        let pid = next_pid;
        next_pid += 1;
        let proc = MockProc {
            cpu: rng.nanos_below(q),
            blocked: false,
            gone: false,
            stopped: true,
        };
        sub_p.procs.insert(pid, proc);
        sub_o.procs.insert(pid, proc);
        (pid, proc.cpu)
    };

    for op in generate(seed, len) {
        match op {
            Op::Add { share } => {
                if live.len() >= 8 {
                    continue;
                }
                let (pid, initial) = spawn(&mut sub_p, &mut sub_o, &mut workload);
                let (id, oid) = match mode {
                    EngineMode::Flat => (
                        prod.add_member(pid, share, initial),
                        oracle.add_member(pid, share, initial),
                    ),
                    EngineMode::Principals => {
                        let id = prod.add_principal(share);
                        let oid = oracle.add_principal(share);
                        let mut members = vec![(pid, initial)];
                        for _ in 0..workload.below(3) {
                            let (extra, extra_cpu) = spawn(&mut sub_p, &mut sub_o, &mut workload);
                            members.push((extra, extra_cpu));
                        }
                        let ch = prod.set_membership(id, &members);
                        let ch_o = oracle.set_membership(oid, &members);
                        assert_eq!(ch, ch_o, "membership change diverges (seed {seed})");
                        (id, oid)
                    }
                };
                assert_eq!(id, oid, "minted principal ids diverge (seed {seed})");
                live.push(id);
                minted.push(id);
            }
            Op::Remove { victim } => {
                if live.is_empty() {
                    continue;
                }
                let id = live.remove(victim as usize % live.len());
                let members = prod.remove_principal(id);
                let members_o = oracle.remove_principal(id);
                assert_eq!(members, members_o, "removed members diverge (seed {seed})");
            }
            Op::SetShare { victim, share } => {
                let pool = if workload.chance(1, 5) {
                    &minted
                } else {
                    &live
                };
                if pool.is_empty() {
                    continue;
                }
                let id = pool[victim as usize % pool.len()];
                assert_eq!(
                    prod.set_share(id, share),
                    oracle.set_share(id, share),
                    "set_share diverges (seed {seed})"
                );
            }
            Op::Quantum { repeat } => {
                for _ in 0..repeat {
                    // Occasionally arrive late (coalesced timer): both
                    // engines must record the overrun.
                    let advance = if workload.chance(1, 10) { q * 3 } else { q };
                    sub_p.now = sub_p.now.saturating_add(advance);
                    sub_o.now = sub_o.now.saturating_add(advance);

                    // Advance the workload model identically in both
                    // substrates: runnable processes burn CPU, some block,
                    // and occasionally one exits.
                    let decisions: Vec<(u32, Nanos, bool, bool)> = sub_p
                        .procs
                        .iter()
                        .filter(|(_, p)| !p.gone)
                        .map(|(&pid, p)| {
                            let burn = if p.stopped {
                                Nanos::ZERO
                            } else {
                                workload.nanos_below(Nanos(q.0 * 3 / 2))
                            };
                            let blocked = workload.chance(1, 6);
                            let exits = workload.chance(1, 40);
                            (pid, burn, blocked, exits)
                        })
                        .collect();
                    for sub in [&mut sub_p, &mut sub_o] {
                        for &(pid, burn, blocked, exits) in &decisions {
                            let p = sub.procs.get_mut(&pid).expect("decided pid exists");
                            p.cpu = p.cpu.saturating_add(burn);
                            p.blocked = blocked;
                            if exits {
                                p.gone = true;
                            }
                        }
                    }

                    let n = prod.begin_quantum(&mut sub_p, &mut sink_p).unwrap();
                    let n_o = oracle.begin_quantum(&mut sub_o, &mut sink_o).unwrap();
                    assert_eq!(n, n_o, "due member counts diverge (seed {seed})");
                    let due: Vec<(ProcId, Vec<u32>)> = prod
                        .due()
                        .iter()
                        .map(|(id, ms)| (id, ms.to_vec()))
                        .collect();
                    assert_eq!(due, oracle.due(), "due lists diverge (seed {seed})");

                    prod.complete_quantum(&mut sub_p, &mut sink_p).unwrap();
                    oracle.complete_quantum(&mut sub_o, &mut sink_o).unwrap();
                    assert_eq!(
                        prod.last_transitions(),
                        oracle.last_transitions(),
                        "transitions diverge (seed {seed})"
                    );
                    assert_eq!(
                        prod.pending_signals(),
                        oracle.pending_signals(),
                        "signals diverge (seed {seed})"
                    );
                    assert_eq!(
                        prod.last_cycle_completed(),
                        oracle.last_cycle_completed(),
                        "cycle boundary diverges (seed {seed})"
                    );
                    report.quanta += 1;
                    report.cycles += u64::from(prod.last_cycle_completed());
                    report.transitions += prod.last_transitions().len() as u64;

                    prod.apply_pending_signals(&mut sub_p, &mut sink_p).unwrap();
                    oracle
                        .apply_pending_signals(&mut sub_o, &mut sink_o)
                        .unwrap();

                    // Auto-reap may have removed principals; forget them.
                    live.retain(|&id| prod.share(id).is_some());
                }
            }
            // Uniprocessor schedules never contain migrations.
            Op::Migrate { .. } => {}
        }

        // Membership refresh (principals mode): reconcile exits and churn
        // a member in/out, identically on both engines.
        if mode == EngineMode::Principals && !live.is_empty() && workload.chance(1, 6) {
            let id = live[workload.below(live.len() as u64) as usize];
            let members = prod.members(id).unwrap_or_default();
            let mut current: Vec<(u32, Nanos)> = members
                .iter()
                .filter(|m| sub_p.procs.get(m).is_some_and(|p| !p.gone))
                .map(|&m| (m, sub_p.procs[&m].cpu))
                .collect();
            if workload.chance(1, 2) {
                let (pid, cpu) = spawn(&mut sub_p, &mut sub_o, &mut workload);
                current.push((pid, cpu));
            } else if current.len() > 1 {
                let k = workload.below(current.len() as u64) as usize;
                current.remove(k);
            }
            let ch = prod.set_membership(id, &current);
            let ch_o = oracle.set_membership(id, &current);
            assert_eq!(ch, ch_o, "refresh change diverges (seed {seed})");
            if let Some(ch) = ch {
                prod.apply_signals(&mut sub_p, &ch.signals, &mut sink_p)
                    .unwrap();
                oracle
                    .apply_signals(&mut sub_o, &ch.signals, &mut sink_o)
                    .unwrap();
            }
        }

        check_engine_state(&prod, &oracle, &minted, seed);
        assert_eq!(
            sink_p.events, sink_o.events,
            "event streams diverge (seed {seed})"
        );
        assert_eq!(sub_p, sub_o, "substrate end states diverge (seed {seed})");
        report.peak_live = report.peak_live.max(live.len());
    }
    report
}

fn check_engine_state(
    prod: &Engine<u32>,
    oracle: &OracleEngine<u32>,
    minted: &[ProcId],
    seed: u64,
) {
    assert_eq!(
        prod.stats(),
        oracle.stats(),
        "EngineStats diverge (seed {seed})"
    );
    assert_eq!(
        prod.cycles(),
        oracle.cycles(),
        "cycle logs diverge (seed {seed})"
    );
    assert_eq!(
        prod.scheduler().cycle_time_remaining().to_bits(),
        oracle.scheduler().cycle_time_remaining().to_bits(),
        "t_c diverges (seed {seed})"
    );
    assert_eq!(
        prod.cycles_completed(),
        oracle.scheduler().cycles_completed()
    );
    for &id in minted {
        assert_eq!(
            prod.share(id),
            oracle.share(id),
            "share diverges (seed {seed})"
        );
        assert_eq!(
            prod.is_eligible(id),
            oracle.is_eligible(id),
            "eligibility diverges (seed {seed})"
        );
        assert_eq!(
            prod.allowance(id).map(f64::to_bits),
            oracle.allowance(id).map(f64::to_bits),
            "allowance diverges (seed {seed})"
        );
        assert_eq!(
            prod.members(id),
            oracle.members(id),
            "member sets diverge (seed {seed})"
        );
    }
}

// ----------------------------------------------------------------------
// SMP mode
// ----------------------------------------------------------------------

/// One mocked process on an M-CPU machine: consumption is recorded per
/// CPU and merged at read time, exactly as a real collector sums per-CPU
/// cputime for a thread that migrated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmpMockProc {
    /// Per-CPU consumption, indexed by CPU.
    pub split: Vec<Nanos>,
    /// The CPU the process currently runs on (where burn is charged).
    pub on: usize,
    /// Observed-blocked flag (§2.4 input).
    pub blocked: bool,
    /// Whether the process has exited.
    pub gone: bool,
    /// Whether the process is currently stopped.
    pub stopped: bool,
}

impl SmpMockProc {
    /// The merged cumulative CPU total: the sum across CPUs.
    pub fn merged(&self) -> Nanos {
        self.split.iter().copied().sum()
    }
}

/// A deterministic M-CPU [`Substrate`]: `read` reports the *merged*
/// per-member total regardless of which CPUs ran the member — the only
/// accounting ALPS ever sees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmpMockSubstrate {
    /// The substrate clock.
    pub now: Nanos,
    /// CPU count (M ≥ 1).
    pub cpus: usize,
    /// Member state by pid.
    pub procs: BTreeMap<u32, SmpMockProc>,
}

impl SmpMockSubstrate {
    /// An empty M-CPU substrate.
    pub fn new(cpus: usize) -> Self {
        assert!(cpus >= 1);
        SmpMockSubstrate {
            now: Nanos::ZERO,
            cpus,
            procs: BTreeMap::new(),
        }
    }
}

impl Substrate for SmpMockSubstrate {
    type Member = u32;
    type Error = Infallible;

    fn now(&mut self) -> Nanos {
        self.now
    }

    fn read(&mut self, member: u32) -> Result<Option<Observation>, Infallible> {
        Ok(self.procs.get(&member).and_then(|p| {
            (!p.gone).then_some(Observation {
                total_cpu: p.merged(),
                blocked: p.blocked,
            })
        }))
    }

    fn deliver(&mut self, member: u32, signal: Signal) -> Result<bool, Infallible> {
        match self.procs.get_mut(&member) {
            Some(p) if !p.gone => {
                p.stopped = signal == Signal::Stop;
                Ok(true)
            }
            _ => Ok(false),
        }
    }
}

/// Per-process consumption bookkeeping for the core-level SMP drivers: a
/// per-CPU split, the CPU currently charged, and an independently
/// maintained scalar total the split must always sum to.
struct SmpCpuState {
    split: Vec<Nanos>,
    on: usize,
    scalar: Nanos,
}

impl SmpCpuState {
    fn new(cpus: usize, initial: Nanos) -> Self {
        let mut split = vec![Nanos::ZERO; cpus];
        split[0] = initial;
        SmpCpuState {
            split,
            on: 0,
            scalar: initial,
        }
    }

    /// Charge `burn` on the current CPU; return the merged total after
    /// asserting it still equals the scalar (conservation).
    fn burn(&mut self, burn: Nanos, seed: u64) -> Nanos {
        self.split[self.on] = self.split[self.on].saturating_add(burn);
        self.scalar = self.scalar.saturating_add(burn);
        let merged: Nanos = self.split.iter().copied().sum();
        assert_eq!(
            merged, self.scalar,
            "per-CPU split does not sum to the total (seed {seed})"
        );
        merged
    }
}

/// Fold a quantum's observables (due list, transitions, cycle flag) into
/// a fingerprint, so suites can compare whole runs for byte-identity.
fn fold_quantum(fp: &mut u64, due: &[ProcId], out: &alps_core::QuantumOutcome) {
    for &id in due {
        fold(fp, (id.index() as u64) << 32 | u64::from(id.generation()));
    }
    fold(fp, 0xD0E5_0000 | due.len() as u64);
    for t in &out.transitions {
        let (tag, id) = match *t {
            alps_core::Transition::Resume(id) => (1u64, id),
            alps_core::Transition::Suspend(id) => (2u64, id),
        };
        fold(
            fp,
            tag << 62 | (id.index() as u64) << 32 | u64::from(id.generation()),
        );
    }
    fold(fp, u64::from(out.cycle_completed));
}

/// Drive one SMP schedule ([`generate_smp`]) against `AlpsScheduler` and
/// [`OracleScheduler`], feeding both the *merged* per-process totals of
/// an M-CPU consumption model with migration churn; lockstep equality is
/// asserted after every op and split/total conservation at every charge.
///
/// The schedule, the workload draws, and therefore every observation fed
/// to the schedulers are independent of `cpus` — migrations only move
/// *where* burn is charged — so the returned [`DriveReport`]
/// (fingerprint included) is identical for every M. Suites assert
/// exactly that.
pub fn run_core_schedule_smp(cfg: AlpsConfig, seed: u64, len: usize, cpus: usize) -> DriveReport {
    let mut prod = AlpsScheduler::new(cfg);
    let mut oracle = OracleScheduler::new(cfg);
    let mut workload = Lcg::new(seed ^ 0x0051_3D0C_7E57_BEEF);
    let mut live: Vec<ProcId> = Vec::new();
    let mut minted: Vec<ProcId> = Vec::new();
    let mut cpu: HashMap<ProcId, SmpCpuState> = HashMap::new();
    let mut now = Nanos::ZERO;
    let q = cfg.quantum;
    let mut report = DriveReport::default();

    for op in generate_smp(seed, len) {
        match op {
            Op::Add { share } => {
                if live.len() >= 12 {
                    continue;
                }
                let initial = workload.nanos_below(q);
                let id = prod.add_process(share, initial);
                let oid = oracle.add_process(share, initial);
                assert_eq!(id, oid, "minted ids diverge (seed {seed})");
                live.push(id);
                minted.push(id);
                cpu.insert(id, SmpCpuState::new(cpus, initial));
            }
            Op::Remove { victim } => {
                if live.is_empty() {
                    continue;
                }
                let id = live.remove(victim as usize % live.len());
                assert_eq!(
                    prod.remove_process(id),
                    oracle.remove_process(id),
                    "remove diverges (seed {seed})"
                );
            }
            Op::SetShare { victim, share } => {
                if live.is_empty() {
                    continue;
                }
                let id = live[victim as usize % live.len()];
                assert_eq!(
                    prod.set_share(id, share),
                    oracle.set_share(id, share),
                    "set_share diverges (seed {seed})"
                );
            }
            Op::Migrate { victim, cpu: c } => {
                if live.is_empty() {
                    continue;
                }
                let id = live[victim as usize % live.len()];
                cpu.get_mut(&id).expect("live process has CPU state").on = c as usize % cpus;
            }
            Op::Quantum { repeat } => {
                for _ in 0..repeat {
                    now = now.saturating_add(q);
                    let due = prod.begin_quantum();
                    let due_o = oracle.begin_quantum();
                    assert_eq!(due, due_o, "due lists diverge (seed {seed})");
                    let obs: Vec<(ProcId, Observation)> = due
                        .iter()
                        .map(|&id| {
                            let burn = workload.nanos_below(Nanos(q.0 * 3 / 2));
                            let merged = cpu
                                .get_mut(&id)
                                .expect("due process has CPU state")
                                .burn(burn, seed);
                            let blocked = workload.chance(1, 6);
                            (
                                id,
                                Observation {
                                    total_cpu: merged,
                                    blocked,
                                },
                            )
                        })
                        .collect();
                    let out = prod.complete_quantum(&obs, now);
                    let out_o = oracle.complete_quantum(&obs, now);
                    assert_eq!(
                        out.transitions, out_o.transitions,
                        "transitions diverge (seed {seed})"
                    );
                    assert_eq!(
                        out.cycle_completed, out_o.cycle_completed,
                        "cycle boundary diverges (seed {seed})"
                    );
                    assert_eq!(
                        out.cycle_record, out_o.cycle_record,
                        "cycle records diverge (seed {seed})"
                    );
                    fold_quantum(&mut report.fingerprint, &due, &out);
                    report.quanta += 1;
                    report.cycles += u64::from(out.cycle_completed);
                    report.transitions += out.transitions.len() as u64;
                }
            }
        }
        check_core_state(&prod, &oracle, &minted, seed);
        for &id in &minted {
            if let Some(a) = prod.allowance(id) {
                fold(&mut report.fingerprint, a.to_bits());
            }
        }
        report.peak_live = report.peak_live.max(live.len());
    }
    report
}

/// Drive one SMP schedule against two production `AlpsScheduler`s that
/// differ only in [`alps_core::DueIndex`] (deadline wheel vs reference
/// scan), asserting they stay lockstep-identical on merged M-CPU
/// accounting with migration churn.
pub fn run_core_due_index_lockstep(
    cfg: AlpsConfig,
    seed: u64,
    len: usize,
    cpus: usize,
) -> DriveReport {
    use alps_core::DueIndex;
    let mut wheel = AlpsScheduler::new(cfg.with_due_index(DueIndex::Wheel));
    let mut scan = AlpsScheduler::new(cfg.with_due_index(DueIndex::Scan));
    let mut workload = Lcg::new(seed ^ 0x0D0E_1D00_5EED_0001);
    let mut live: Vec<ProcId> = Vec::new();
    let mut minted: Vec<ProcId> = Vec::new();
    let mut cpu: HashMap<ProcId, SmpCpuState> = HashMap::new();
    let mut now = Nanos::ZERO;
    let q = cfg.quantum;
    let mut report = DriveReport::default();

    for op in generate_smp(seed, len) {
        match op {
            Op::Add { share } => {
                if live.len() >= 12 {
                    continue;
                }
                let initial = workload.nanos_below(q);
                let id = wheel.add_process(share, initial);
                let sid = scan.add_process(share, initial);
                assert_eq!(id, sid, "minted ids diverge (seed {seed})");
                live.push(id);
                minted.push(id);
                cpu.insert(id, SmpCpuState::new(cpus, initial));
            }
            Op::Remove { victim } => {
                if live.is_empty() {
                    continue;
                }
                let id = live.remove(victim as usize % live.len());
                assert_eq!(
                    wheel.remove_process(id),
                    scan.remove_process(id),
                    "remove diverges (seed {seed})"
                );
            }
            Op::SetShare { victim, share } => {
                if live.is_empty() {
                    continue;
                }
                let id = live[victim as usize % live.len()];
                assert_eq!(
                    wheel.set_share(id, share),
                    scan.set_share(id, share),
                    "set_share diverges (seed {seed})"
                );
            }
            Op::Migrate { victim, cpu: c } => {
                if live.is_empty() {
                    continue;
                }
                let id = live[victim as usize % live.len()];
                cpu.get_mut(&id).expect("live process has CPU state").on = c as usize % cpus;
            }
            Op::Quantum { repeat } => {
                for _ in 0..repeat {
                    now = now.saturating_add(q);
                    let due = wheel.begin_quantum();
                    let due_s = scan.begin_quantum();
                    assert_eq!(due, due_s, "due lists diverge (seed {seed})");
                    let obs: Vec<(ProcId, Observation)> = due
                        .iter()
                        .map(|&id| {
                            let burn = workload.nanos_below(Nanos(q.0 * 3 / 2));
                            let merged = cpu
                                .get_mut(&id)
                                .expect("due process has CPU state")
                                .burn(burn, seed);
                            let blocked = workload.chance(1, 6);
                            (
                                id,
                                Observation {
                                    total_cpu: merged,
                                    blocked,
                                },
                            )
                        })
                        .collect();
                    let out = wheel.complete_quantum(&obs, now);
                    let out_s = scan.complete_quantum(&obs, now);
                    assert_eq!(
                        out.transitions, out_s.transitions,
                        "transitions diverge (seed {seed})"
                    );
                    assert_eq!(
                        out.cycle_completed, out_s.cycle_completed,
                        "cycle boundary diverges (seed {seed})"
                    );
                    fold_quantum(&mut report.fingerprint, &due, &out);
                    report.quanta += 1;
                    report.cycles += u64::from(out.cycle_completed);
                    report.transitions += out.transitions.len() as u64;
                }
            }
        }
        for &id in &minted {
            assert_eq!(
                wheel.allowance(id).map(f64::to_bits),
                scan.allowance(id).map(f64::to_bits),
                "allowance diverges (seed {seed})"
            );
            assert_eq!(
                wheel.is_eligible(id),
                scan.is_eligible(id),
                "eligibility diverges (seed {seed})"
            );
        }
        report.peak_live = report.peak_live.max(live.len());
    }
    report
}

/// Drive one SMP schedule against `alps_core::Engine` and
/// [`OracleEngine`] over twin [`SmpMockSubstrate`]s (flat principals,
/// auto-reap): the engines see only merged per-member totals while the
/// workload migrates processes between CPUs underneath them.
///
/// Like [`run_core_schedule_smp`], everything the engines observe is
/// independent of `cpus`, so the report (fingerprint included) must be
/// identical for every M.
pub fn run_engine_schedule_smp(
    cfg: AlpsConfig,
    instrumentation: Instrumentation,
    seed: u64,
    len: usize,
    cpus: usize,
) -> DriveReport {
    let mut prod: Engine<u32> = Engine::new(cfg, instrumentation).with_auto_reap(true);
    let mut oracle: OracleEngine<u32> =
        OracleEngine::new(cfg, instrumentation).with_auto_reap(true);
    let mut sub_p = SmpMockSubstrate::new(cpus);
    let mut sub_o = SmpMockSubstrate::new(cpus);
    let mut sink_p = RecordingSink::new();
    let mut sink_o = RecordingSink::new();
    let mut workload = Lcg::new(seed ^ 0x0BAD_CAFE);
    let mut live: Vec<ProcId> = Vec::new();
    let mut minted: Vec<ProcId> = Vec::new();
    let mut next_pid: u32 = 100;
    let q = cfg.quantum;
    let mut report = DriveReport::default();

    let mut spawn = |sub_p: &mut SmpMockSubstrate, sub_o: &mut SmpMockSubstrate, rng: &mut Lcg| {
        let pid = next_pid;
        next_pid += 1;
        let mut split = vec![Nanos::ZERO; cpus];
        split[0] = rng.nanos_below(q);
        let proc = SmpMockProc {
            split,
            on: 0,
            blocked: false,
            gone: false,
            stopped: true,
        };
        let initial = proc.merged();
        sub_p.procs.insert(pid, proc.clone());
        sub_o.procs.insert(pid, proc);
        (pid, initial)
    };

    for op in generate_smp(seed, len) {
        match op {
            Op::Add { share } => {
                if live.len() >= 8 {
                    continue;
                }
                let (pid, initial) = spawn(&mut sub_p, &mut sub_o, &mut workload);
                let id = prod.add_member(pid, share, initial);
                let oid = oracle.add_member(pid, share, initial);
                assert_eq!(id, oid, "minted principal ids diverge (seed {seed})");
                live.push(id);
                minted.push(id);
            }
            Op::Remove { victim } => {
                if live.is_empty() {
                    continue;
                }
                let id = live.remove(victim as usize % live.len());
                assert_eq!(
                    prod.remove_principal(id),
                    oracle.remove_principal(id),
                    "removed members diverge (seed {seed})"
                );
            }
            Op::SetShare { victim, share } => {
                if live.is_empty() {
                    continue;
                }
                let id = live[victim as usize % live.len()];
                assert_eq!(
                    prod.set_share(id, share),
                    oracle.set_share(id, share),
                    "set_share diverges (seed {seed})"
                );
            }
            Op::Migrate { victim, cpu } => {
                if live.is_empty() {
                    continue;
                }
                let id = live[victim as usize % live.len()];
                let target = cpu as usize % cpus;
                for m in prod.members(id).unwrap_or_default() {
                    for sub in [&mut sub_p, &mut sub_o] {
                        if let Some(p) = sub.procs.get_mut(&m) {
                            p.on = target;
                        }
                    }
                }
            }
            Op::Quantum { repeat } => {
                for _ in 0..repeat {
                    let advance = if workload.chance(1, 10) { q * 3 } else { q };
                    sub_p.now = sub_p.now.saturating_add(advance);
                    sub_o.now = sub_o.now.saturating_add(advance);

                    // Advance the workload model identically in both
                    // substrates: burn lands on each process's current
                    // CPU; the engines only ever see the merged sum.
                    let decisions: Vec<(u32, Nanos, bool, bool)> = sub_p
                        .procs
                        .iter()
                        .filter(|(_, p)| !p.gone)
                        .map(|(&pid, p)| {
                            let burn = if p.stopped {
                                Nanos::ZERO
                            } else {
                                workload.nanos_below(Nanos(q.0 * 3 / 2))
                            };
                            let blocked = workload.chance(1, 6);
                            let exits = workload.chance(1, 40);
                            (pid, burn, blocked, exits)
                        })
                        .collect();
                    for sub in [&mut sub_p, &mut sub_o] {
                        for &(pid, burn, blocked, exits) in &decisions {
                            let p = sub.procs.get_mut(&pid).expect("decided pid exists");
                            let on = p.on;
                            p.split[on] = p.split[on].saturating_add(burn);
                            p.blocked = blocked;
                            if exits {
                                p.gone = true;
                            }
                        }
                    }

                    let n = prod.begin_quantum(&mut sub_p, &mut sink_p).unwrap();
                    let n_o = oracle.begin_quantum(&mut sub_o, &mut sink_o).unwrap();
                    assert_eq!(n, n_o, "due member counts diverge (seed {seed})");
                    prod.complete_quantum(&mut sub_p, &mut sink_p).unwrap();
                    oracle.complete_quantum(&mut sub_o, &mut sink_o).unwrap();
                    assert_eq!(
                        prod.last_transitions(),
                        oracle.last_transitions(),
                        "transitions diverge (seed {seed})"
                    );
                    assert_eq!(
                        prod.pending_signals(),
                        oracle.pending_signals(),
                        "signals diverge (seed {seed})"
                    );
                    fold(&mut report.fingerprint, n as u64);
                    for t in prod.last_transitions() {
                        let (tag, id) = match *t {
                            alps_core::Transition::Resume(id) => (1u64, id),
                            alps_core::Transition::Suspend(id) => (2u64, id),
                        };
                        fold(
                            &mut report.fingerprint,
                            tag << 62 | (id.index() as u64) << 32 | u64::from(id.generation()),
                        );
                    }
                    report.quanta += 1;
                    report.cycles += u64::from(prod.last_cycle_completed());
                    report.transitions += prod.last_transitions().len() as u64;

                    prod.apply_pending_signals(&mut sub_p, &mut sink_p).unwrap();
                    oracle
                        .apply_pending_signals(&mut sub_o, &mut sink_o)
                        .unwrap();
                    live.retain(|&id| prod.share(id).is_some());
                }
            }
        }

        check_engine_state(&prod, &oracle, &minted, seed);
        assert_eq!(
            sink_p.events, sink_o.events,
            "event streams diverge (seed {seed})"
        );
        assert_eq!(sub_p, sub_o, "substrate end states diverge (seed {seed})");
        for &id in &minted {
            if let Some(a) = prod.allowance(id) {
                fold(&mut report.fingerprint, a.to_bits());
            }
        }
        report.peak_live = report.peak_live.max(live.len());
    }
    report
}
