//! # alps-conformance — a spec oracle for the ALPS algorithm
//!
//! PRs 2–4 layered heavy optimizations onto the Figure-3 algorithm: slot
//! indexes, a deadline wheel, and an allocation-free quantum loop. Until
//! now the only evidence they preserved semantics was pairwise lockstep
//! testing between adjacent variants. This crate provides an *independent*
//! reference: [`OracleScheduler`] is a deliberately naive transcription of
//! Figure 3 — full O(N) scans every quantum, fresh allocations everywhere,
//! no due index, no incremental counters — that performs the *arithmetic*
//! of the spec in exactly the order the production scheduler does, so a
//! differential harness can demand byte-identical results (f64 allowances
//! compared by bit pattern, not by tolerance).
//!
//! Three layers:
//!
//! * [`OracleScheduler`] — flat Figure-3 oracle mirroring
//!   `alps_core::AlpsScheduler`;
//! * [`OraclePrincipalScheduler`] — naive §5 principal aggregation
//!   mirroring `alps_core::PrincipalScheduler`;
//! * [`OracleEngine`] — a naive replica of the generic engine loop
//!   (overrun detection, reads, reaping, signals, cycle records,
//!   [`alps_core::EngineStats`]) driven over the same
//!   [`alps_core::Substrate`].
//!
//! [`harness`] generates randomized schedules (seeded, deterministic) and
//! drives oracle and production side by side, asserting identical due
//! lists, transitions, signals, events, cycle records, and stats after
//! every step. The suites in `tests/` sweep the full configuration matrix
//! — {wheel, scan} × {lazy, eager} × I/O policies × {flat, principals} —
//! across well over a thousand generated schedules.
//!
//! The one non-naive concession: ids and emission order are part of the
//! observable contract (transitions carry [`alps_core::ProcId`]s and are
//! emitted in registration-scan order), so the oracle reproduces the
//! production id-minting discipline — LIFO slot reuse with generation
//! bumps and the occupied-list compaction rule — in the simplest possible
//! form. Everything *per-quantum* is pure scan.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod oracle;

pub mod actuator;
pub mod harness;
pub mod schedule;

pub use engine::OracleEngine;
pub use oracle::{OraclePrincipalScheduler, OracleScheduler};
