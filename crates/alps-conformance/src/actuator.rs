//! Differential driver for the cgroup actuator.
//!
//! The cgroup substrate claims that in [`ActuatorMode::Signals`]
//! (freezer) mode it is *semantically identical* to the classic signal
//! substrate: a frozen leaf is a stopped process, `cpu.stat` is
//! cumulative CPU, a vanished member bounces actuation exactly like
//! `kill(2)`. This driver proves it the same way the engine suites prove
//! the oracle claim — run the production [`Engine`] twice over the same
//! randomized churn schedule, once on a [`FakeCgroupFs`]-backed
//! [`CgroupSubstrate`] and once on the reference [`MockSubstrate`], and
//! assert byte-identical observables after every quantum: due lists,
//! transitions, pending signals, event streams, cycle records,
//! [`alps_core::EngineStats`], and per-principal `f64` allowances by bit
//! pattern. The workload (burns, blocks, exits) is decided once per
//! quantum and applied to both worlds, so the only thing that can
//! diverge is the substrate itself.

use std::fmt::Write as _;

use alps_core::{AlpsConfig, Engine, Instrumentation, Nanos, ProcId, RecordingSink};
use alps_os::cgroup::{ActuatorMode, CgroupFs, CgroupSubstrate, FakeCgroupFs};

use crate::harness::{fold, DriveReport, MockProc, MockSubstrate};
use crate::schedule::{generate, Lcg, Op};

/// Drive one randomized churn schedule against `Engine<i32>` over a
/// signal-equivalent [`CgroupSubstrate`] (freezer mode on a
/// [`FakeCgroupFs`]) and over the reference [`MockSubstrate`], asserting
/// lockstep byte-identity after every quantum. Panics with `seed` in the
/// message on any divergence.
pub fn run_cgroup_schedule(
    cfg: AlpsConfig,
    instrumentation: Instrumentation,
    seed: u64,
    len: usize,
) -> DriveReport {
    let mut prod_c: Engine<i32> = Engine::new(cfg, instrumentation).with_auto_reap(true);
    let mut prod_m: Engine<i32> = Engine::new(cfg, instrumentation).with_auto_reap(true);
    let mut cg: CgroupSubstrate<FakeCgroupFs> =
        CgroupSubstrate::new(FakeCgroupFs::new(1), ActuatorMode::Signals);
    let mut mock: MockSubstrate<i32> = MockSubstrate::default();
    let mut sink_c = RecordingSink::new();
    let mut sink_m = RecordingSink::new();
    let mut workload = Lcg::new(seed ^ 0x0BAD_CAFE);
    let mut live: Vec<ProcId> = Vec::new();
    let mut minted: Vec<ProcId> = Vec::new();
    let mut pids: Vec<i32> = Vec::new();
    let mut next_pid: i32 = 100;
    let mut group = String::new();
    let q = cfg.quantum;
    let mut report = DriveReport::default();

    for op in generate(seed, len) {
        match op {
            Op::Add { share } => {
                if live.len() >= 8 {
                    continue;
                }
                let pid = next_pid;
                next_pid += 1;
                let initial = workload.nanos_below(q);
                // Mock: spawn stopped with the initial consumption.
                mock.procs.insert(
                    pid,
                    MockProc {
                        cpu: initial,
                        blocked: false,
                        gone: false,
                        stopped: true,
                    },
                );
                // Cgroup: enroll (creates + populates the leaf), seed the
                // same initial usage, then freeze — the registration
                // contract says the caller suspends the member.
                cg.enroll(pid, share).expect("fake enroll cannot fault");
                group.clear();
                let _ = write!(group, "m{pid}");
                assert!(
                    cg.fs_mut().charge(&group, initial),
                    "fresh leaf accepts its seed charge (seed {seed})"
                );
                cg.fs_mut()
                    .write_freeze(&group, true)
                    .expect("fresh leaf freezes");
                let id = prod_c.add_member(pid, share, initial);
                let mid = prod_m.add_member(pid, share, initial);
                assert_eq!(id, mid, "minted principal ids diverge (seed {seed})");
                live.push(id);
                minted.push(id);
                pids.push(pid);
            }
            Op::Remove { victim } => {
                if live.is_empty() {
                    continue;
                }
                let id = live.remove(victim as usize % live.len());
                let members = prod_c.remove_principal(id);
                let members_m = prod_m.remove_principal(id);
                assert_eq!(members, members_m, "removed members diverge (seed {seed})");
                // Neither side actuates on removal here: the mock keeps
                // the proc in whatever run state it had, so the cgroup
                // side keeps the leaf too. (The supervisor's
                // release-on-remove is its own layer, tested in alps-os.)
            }
            Op::SetShare { victim, share } => {
                let pool = if workload.chance(1, 5) {
                    &minted
                } else {
                    &live
                };
                if pool.is_empty() {
                    continue;
                }
                let id = pool[victim as usize % pool.len()];
                assert_eq!(
                    prod_c.set_share(id, share),
                    prod_m.set_share(id, share),
                    "set_share diverges (seed {seed})"
                );
            }
            Op::Quantum { repeat } => {
                for _ in 0..repeat {
                    // Occasionally arrive late (coalesced timer).
                    let advance = if workload.chance(1, 10) { q * 3 } else { q };
                    mock.now = mock.now.saturating_add(advance);
                    cg.fs_mut().tick(advance);

                    // One workload decision per live pid, applied to both
                    // worlds: runnable members burn, some block, and
                    // occasionally one exits.
                    let decisions: Vec<(i32, Nanos, bool, bool)> = mock
                        .procs
                        .iter()
                        .filter(|(_, p)| !p.gone)
                        .map(|(&pid, p)| {
                            let burn = if p.stopped {
                                Nanos::ZERO
                            } else {
                                workload.nanos_below(Nanos(q.0 * 3 / 2))
                            };
                            let blocked = workload.chance(1, 6);
                            let exits = workload.chance(1, 40);
                            (pid, burn, blocked, exits)
                        })
                        .collect();
                    for &(pid, burn, blocked, exits) in &decisions {
                        let p = mock.procs.get_mut(&pid).expect("decided pid exists");
                        p.cpu = p.cpu.saturating_add(burn);
                        p.blocked = blocked;
                        if exits {
                            p.gone = true;
                        }
                        group.clear();
                        let _ = write!(group, "m{pid}");
                        let fs = cg.fs_mut();
                        // charge() refuses frozen/gone members on its own;
                        // a runnable mock proc must always be chargeable.
                        let charged = fs.charge(&group, burn);
                        assert_eq!(
                            charged,
                            burn > Nanos::ZERO || !p.stopped,
                            "charge/burn disagreement for {pid} (seed {seed})"
                        );
                        fs.set_blocked(&group, blocked);
                        if exits {
                            fs.kill_pid(pid);
                        }
                    }

                    let n = prod_c.begin_quantum(&mut cg, &mut sink_c).unwrap();
                    let n_m = prod_m.begin_quantum(&mut mock, &mut sink_m).unwrap();
                    assert_eq!(n, n_m, "due member counts diverge (seed {seed})");
                    let due: Vec<(ProcId, Vec<i32>)> = prod_c
                        .due()
                        .iter()
                        .map(|(id, ms)| (id, ms.to_vec()))
                        .collect();
                    let due_m: Vec<(ProcId, Vec<i32>)> = prod_m
                        .due()
                        .iter()
                        .map(|(id, ms)| (id, ms.to_vec()))
                        .collect();
                    assert_eq!(due, due_m, "due lists diverge (seed {seed})");

                    prod_c.complete_quantum(&mut cg, &mut sink_c).unwrap();
                    prod_m.complete_quantum(&mut mock, &mut sink_m).unwrap();
                    assert_eq!(
                        prod_c.last_transitions(),
                        prod_m.last_transitions(),
                        "transitions diverge (seed {seed})"
                    );
                    assert_eq!(
                        prod_c.pending_signals(),
                        prod_m.pending_signals(),
                        "signals diverge (seed {seed})"
                    );
                    assert_eq!(
                        prod_c.last_cycle_completed(),
                        prod_m.last_cycle_completed(),
                        "cycle boundary diverges (seed {seed})"
                    );
                    fold(&mut report.fingerprint, n as u64);
                    for t in prod_c.last_transitions() {
                        let (tag, id) = match *t {
                            alps_core::Transition::Resume(id) => (1u64, id),
                            alps_core::Transition::Suspend(id) => (2u64, id),
                        };
                        fold(
                            &mut report.fingerprint,
                            tag << 62 | (id.index() as u64) << 32 | u64::from(id.generation()),
                        );
                    }
                    report.quanta += 1;
                    report.cycles += u64::from(prod_c.last_cycle_completed());
                    report.transitions += prod_c.last_transitions().len() as u64;

                    prod_c.apply_pending_signals(&mut cg, &mut sink_c).unwrap();
                    prod_m
                        .apply_pending_signals(&mut mock, &mut sink_m)
                        .unwrap();

                    // Auto-reap may have removed principals; forget them
                    // on both sides identically.
                    live.retain(|&id| {
                        let l = prod_c.share(id).is_some();
                        assert_eq!(l, prod_m.share(id).is_some(), "reap diverges (seed {seed})");
                        l
                    });
                }
            }
            // Uniprocessor schedules never contain migrations.
            Op::Migrate { .. } => {}
        }

        check_twin_engines(&prod_c, &prod_m, &minted, seed);
        assert_eq!(
            sink_c.events, sink_m.events,
            "event streams diverge (seed {seed})"
        );
        check_substrates(&cg, &mock, &pids, seed);
        for &id in &minted {
            if let Some(a) = prod_c.allowance(id) {
                fold(&mut report.fingerprint, a.to_bits());
            }
        }
        report.peak_live = report.peak_live.max(live.len());
    }
    report
}

/// Every observable of two production engines, compared byte-for-byte.
fn check_twin_engines(a: &Engine<i32>, b: &Engine<i32>, minted: &[ProcId], seed: u64) {
    assert_eq!(a.stats(), b.stats(), "EngineStats diverge (seed {seed})");
    assert_eq!(a.cycles(), b.cycles(), "cycle logs diverge (seed {seed})");
    assert_eq!(
        a.scheduler().cycle_time_remaining().to_bits(),
        b.scheduler().cycle_time_remaining().to_bits(),
        "t_c diverges (seed {seed})"
    );
    assert_eq!(a.cycles_completed(), b.cycles_completed());
    for &id in minted {
        assert_eq!(a.share(id), b.share(id), "share diverges (seed {seed})");
        assert_eq!(
            a.is_eligible(id),
            b.is_eligible(id),
            "eligibility diverges (seed {seed})"
        );
        assert_eq!(
            a.allowance(id).map(f64::to_bits),
            b.allowance(id).map(f64::to_bits),
            "allowance diverges (seed {seed})"
        );
        assert_eq!(
            a.members(id),
            b.members(id),
            "members diverge (seed {seed})"
        );
    }
}

/// Cross-check the actuation state of the two worlds: frozen ↔ stopped,
/// leaf usage ↔ mock cumulative CPU, blocked ↔ blocked, for every pid
/// ever spawned.
fn check_substrates(
    cg: &CgroupSubstrate<FakeCgroupFs>,
    mock: &MockSubstrate<i32>,
    pids: &[i32],
    seed: u64,
) {
    for &pid in pids {
        let p = mock.procs.get(&pid).expect("spawned pid stays in the mock");
        let g = cg
            .fs()
            .group(&format!("m{pid}"))
            .expect("spawned pid keeps its leaf");
        assert_eq!(
            g.frozen, p.stopped,
            "freeze/stop state diverges for {pid} (seed {seed})"
        );
        assert_eq!(g.usage, p.cpu, "usage/cpu diverges for {pid} (seed {seed})");
        assert_eq!(
            g.blocked, p.blocked,
            "blocked state diverges for {pid} (seed {seed})"
        );
    }
}
