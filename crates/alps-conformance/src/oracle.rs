//! The naive Figure-3 reference implementation.
//!
//! Everything here is the *simplest* code that implements the spec: full
//! scans over every slot each quantum, a fresh `Vec` per call, no due
//! index, no incrementally maintained counters. The only discipline it
//! shares with the production scheduler is arithmetic order (so f64
//! results are bit-identical) and id minting (so [`ProcId`]s and emission
//! order are comparable) — see the crate docs.

use std::collections::{BTreeMap, HashMap};

use alps_core::{
    AlpsConfig, CycleEntry, CycleRecord, IoPolicy, MemberTransition, MembershipChange, Nanos,
    Observation, PrincipalOutcome, ProcId, QuantumOutcome, StaleId, Transition,
};

#[derive(Debug, Clone)]
struct OracleProc {
    share: u64,
    allowance: f64,
    eligible: bool,
    update: u64,
    last_cpu: Nanos,
    cycle_consumed: Nanos,
    forfeited: bool,
}

#[derive(Debug, Clone)]
struct OracleSlot {
    generation: u32,
    state: Option<OracleProc>,
    listed: bool,
}

/// One principal's due-member readings for a quantum: `None` marks a
/// member that could not be read (it exited mid-quantum).
pub type MemberReadings<M> = Vec<(M, Option<Observation>)>;

/// Naive reference implementation of `alps_core::AlpsScheduler`.
///
/// Same public contract (ids, due lists, transitions, cycle records,
/// aggregate counters), O(N) everything, allocation per call.
#[derive(Debug, Clone)]
pub struct OracleScheduler {
    cfg: AlpsConfig,
    slots: Vec<OracleSlot>,
    /// Vacant slot indices, popped LIFO exactly like production.
    free: Vec<u32>,
    /// Slot indices in scan order, with the production compaction rule
    /// (vacated entries removed once they outnumber the live ones).
    occupied: Vec<u32>,
    vacated: usize,
    live: usize,
    total_shares: u64,
    tc: f64,
    count: u64,
    cycles_completed: u64,
}

impl OracleScheduler {
    /// Create an empty oracle.
    pub fn new(cfg: AlpsConfig) -> Self {
        assert!(cfg.quantum > Nanos::ZERO, "quantum must be positive");
        OracleScheduler {
            cfg,
            slots: Vec::new(),
            free: Vec::new(),
            occupied: Vec::new(),
            vacated: 0,
            live: 0,
            total_shares: 0,
            tc: 0.0,
            count: 0,
            cycles_completed: 0,
        }
    }

    /// Total shares `S`.
    pub fn total_shares(&self) -> u64 {
        self.total_shares
    }

    /// The quantum length `Q`.
    pub fn quantum(&self) -> Nanos {
        self.cfg.quantum
    }

    /// The cycle length `S · Q` in nanoseconds.
    pub fn cycle_len(&self) -> f64 {
        self.total_shares as f64 * self.cfg.quantum.as_f64()
    }

    /// CPU time remaining in the current cycle (`t_c`).
    pub fn cycle_time_remaining(&self) -> f64 {
        self.tc
    }

    /// Completed cycles.
    pub fn cycles_completed(&self) -> u64 {
        self.cycles_completed
    }

    /// Scheduler invocations.
    pub fn invocations(&self) -> u64 {
        self.count
    }

    /// Registered processes.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Register a process (Figure 3 "join": starts ineligible, allowance =
    /// share, cycle extended by `share · Q`).
    pub fn add_process(&mut self, share: u64, initial_cpu: Nanos) -> ProcId {
        assert!(share > 0, "share must be positive");
        let state = OracleProc {
            share,
            allowance: share as f64,
            eligible: false,
            update: 0,
            last_cpu: initial_cpu,
            cycle_consumed: Nanos::ZERO,
            forfeited: false,
        };
        self.total_shares += share;
        self.tc += share as f64 * self.cfg.quantum.as_f64();
        self.live += 1;
        if let Some(idx) = self.free.pop() {
            let slot = &mut self.slots[idx as usize];
            slot.generation = slot.generation.wrapping_add(1);
            slot.state = Some(state);
            if !slot.listed {
                slot.listed = true;
                self.occupied.push(idx);
            } else {
                self.vacated -= 1;
            }
            ProcId::from_raw(idx, slot.generation)
        } else {
            self.slots.push(OracleSlot {
                generation: 0,
                state: Some(state),
                listed: true,
            });
            let idx = (self.slots.len() - 1) as u32;
            self.occupied.push(idx);
            ProcId::from_raw(idx, 0)
        }
    }

    /// Deregister a process (Figure 3 "leave": cycle shortened by the
    /// unspent positive allowance).
    pub fn remove_process(&mut self, id: ProcId) -> Option<u64> {
        let slot = self.slots.get_mut(id.index())?;
        if slot.generation != id.generation() {
            return None;
        }
        let state = slot.state.take()?;
        self.free.push(id.index() as u32);
        self.vacated += 1;
        if self.vacated * 2 > self.occupied.len() {
            let slots = &mut self.slots;
            self.occupied.retain(|&i| {
                let keep = slots[i as usize].state.is_some();
                if !keep {
                    slots[i as usize].listed = false;
                }
                keep
            });
            self.vacated = 0;
        }
        self.total_shares -= state.share;
        self.live -= 1;
        if state.allowance > 0.0 {
            self.tc -= state.allowance * self.cfg.quantum.as_f64();
        }
        Some(state.share)
    }

    /// Change a share (§2.2: allowance rescaled in proportion, cycle
    /// absorbs the delta, re-measured next quantum).
    pub fn set_share(&mut self, id: ProcId, share: u64) -> Result<(), StaleId> {
        assert!(share > 0, "share must be positive");
        let q = self.cfg.quantum.as_f64();
        let state = self.state_mut(id).ok_or(StaleId(id))?;
        let old = state.share;
        let old_allowance = state.allowance;
        state.share = share;
        state.allowance = old_allowance * share as f64 / old as f64;
        state.update = 0;
        let allowance_delta = state.allowance - old_allowance;
        self.total_shares = self.total_shares - old + share;
        self.tc += allowance_delta * q;
        Ok(())
    }

    /// A process's share.
    pub fn share(&self, id: ProcId) -> Option<u64> {
        self.state(id).map(|s| s.share)
    }

    /// A process's remaining allowance, in quanta.
    pub fn allowance(&self, id: ProcId) -> Option<f64> {
        self.state(id).map(|s| s.allowance)
    }

    /// Whether a process is in the eligible group.
    pub fn is_eligible(&self, id: ProcId) -> Option<bool> {
        self.state(id).map(|s| s.eligible)
    }

    /// Begin an invocation: advance `count`, scan every slot, return the
    /// due set `{i : eligible_i ∧ (¬lazy ∨ update_i ≤ count)}` in scan
    /// order.
    pub fn begin_quantum(&mut self) -> Vec<ProcId> {
        self.count += 1;
        let count = self.count;
        let lazy = self.cfg.lazy_measurement;
        let mut due = Vec::new();
        for &i in &self.occupied {
            let slot = &self.slots[i as usize];
            let Some(s) = slot.state.as_ref() else {
                continue;
            };
            if s.eligible && (!lazy || s.update <= count) {
                due.push(ProcId::from_raw(i, slot.generation));
            }
        }
        due
    }

    /// Complete the invocation: the measurement loop, cycle-boundary
    /// handling, and the full-scan repartition of Figure 3.
    pub fn complete_quantum(
        &mut self,
        observations: &[(ProcId, Observation)],
        now: Nanos,
    ) -> QuantumOutcome {
        let q = self.cfg.quantum.as_f64();
        let io_policy = self.cfg.io_policy;

        // Measurement loop, with the cycle-time adjustment accumulated
        // locally and applied once (arithmetic order is part of the
        // contract under bit-exact comparison).
        let mut tc_delta = 0.0f64;
        for &(id, obs) in observations {
            let Some(state) = self.state_mut(id) else {
                continue; // removed between begin and complete
            };
            let consumed = obs.total_cpu.saturating_sub(state.last_cpu);
            state.last_cpu = obs.total_cpu;
            state.allowance -= consumed.as_f64() / q;
            state.cycle_consumed += consumed;
            tc_delta -= consumed.as_f64();
            if obs.blocked {
                match io_policy {
                    IoPolicy::OneQuantumPenalty => {
                        state.allowance -= 1.0;
                        tc_delta -= q;
                    }
                    IoPolicy::NoPenalty => {}
                    IoPolicy::ForfeitAllowance => {
                        if !state.forfeited && state.allowance > 0.0 {
                            tc_delta -= state.allowance * q;
                            state.allowance = 0.0;
                            state.forfeited = true;
                        }
                    }
                }
            }
        }
        self.tc += tc_delta;

        // Cycle boundary: exactly one cycle credited per invocation.
        let cycle_completed = self.tc <= 0.0 && self.total_shares > 0;
        let mut cycle_record = None;
        if cycle_completed {
            self.tc += self.cycle_len();
            self.cycles_completed += 1;
            if self.cfg.record_cycles {
                cycle_record = Some(self.take_cycle_record(now));
            } else {
                for k in 0..self.occupied.len() {
                    let i = self.occupied[k] as usize;
                    if let Some(s) = self.slots[i].state.as_mut() {
                        s.cycle_consumed = Nanos::ZERO;
                        s.forfeited = false;
                    }
                }
            }
        }

        // Repartition: the reference semantics walk *every* slot, every
        // quantum (the production scheduler proves it can restrict the
        // walk off-boundary; the oracle must not assume that).
        let mut transitions = Vec::new();
        let count = self.count;
        for k in 0..self.occupied.len() {
            let i = self.occupied[k] as usize;
            let slot = &mut self.slots[i];
            let Some(s) = slot.state.as_mut() else {
                continue;
            };
            if cycle_completed {
                s.allowance += s.share as f64;
            }
            let want_eligible = s.allowance > 0.0;
            if want_eligible != s.eligible {
                s.eligible = want_eligible;
                let id = ProcId::from_raw(i as u32, slot.generation);
                transitions.push(if want_eligible {
                    Transition::Resume(id)
                } else {
                    Transition::Suspend(id)
                });
            }
            if s.update <= count {
                let wait = s.allowance.ceil().max(0.0) as u64;
                s.update = count + wait;
            }
        }

        // Liveness valve, with the eligible count found by scan.
        let eligible_count = self
            .occupied
            .iter()
            .filter_map(|&i| self.slots[i as usize].state.as_ref())
            .filter(|s| s.eligible)
            .count();
        if self.live > 0 && self.tc > 0.0 && eligible_count == 0 {
            self.tc = 0.0;
        }

        QuantumOutcome {
            transitions,
            cycle_completed,
            cycle_record,
        }
    }

    fn take_cycle_record(&mut self, now: Nanos) -> CycleRecord {
        let mut entries = Vec::new();
        let mut total = Nanos::ZERO;
        for k in 0..self.occupied.len() {
            let i = self.occupied[k] as usize;
            let slot = &mut self.slots[i];
            if let Some(s) = slot.state.as_mut() {
                entries.push(CycleEntry {
                    id: ProcId::from_raw(i as u32, slot.generation),
                    share: s.share,
                    consumed: s.cycle_consumed,
                });
                total += s.cycle_consumed;
                s.cycle_consumed = Nanos::ZERO;
                s.forfeited = false;
            }
        }
        CycleRecord {
            index: self.cycles_completed - 1,
            completed_at: now,
            total_shares: self.total_shares,
            total_consumed: total,
            entries,
        }
    }

    fn state(&self, id: ProcId) -> Option<&OracleProc> {
        let slot = self.slots.get(id.index())?;
        if slot.generation != id.generation() {
            return None;
        }
        slot.state.as_ref()
    }

    fn state_mut(&mut self, id: ProcId) -> Option<&mut OracleProc> {
        let slot = self.slots.get_mut(id.index())?;
        if slot.generation != id.generation() {
            return None;
        }
        slot.state.as_mut()
    }
}

#[derive(Debug, Clone)]
struct OraclePrincipal<M> {
    cumulative: Nanos,
    members: BTreeMap<M, Nanos>,
}

/// Naive reference implementation of `alps_core::PrincipalScheduler`:
/// member deltas folded into a per-principal aggregate, eligibility
/// fanned out to member signals.
#[derive(Debug, Clone)]
pub struct OraclePrincipalScheduler<M: Ord + Copy> {
    inner: OracleScheduler,
    principals: HashMap<ProcId, OraclePrincipal<M>>,
}

impl<M: Ord + Copy> OraclePrincipalScheduler<M> {
    /// Create an empty principal oracle.
    pub fn new(cfg: AlpsConfig) -> Self {
        OraclePrincipalScheduler {
            inner: OracleScheduler::new(cfg),
            principals: HashMap::new(),
        }
    }

    /// The flat oracle underneath.
    pub fn inner(&self) -> &OracleScheduler {
        &self.inner
    }

    /// Register a principal with no members.
    pub fn add_principal(&mut self, share: u64) -> ProcId {
        let id = self.inner.add_process(share, Nanos::ZERO);
        self.principals.insert(
            id,
            OraclePrincipal {
                cumulative: Nanos::ZERO,
                members: BTreeMap::new(),
            },
        );
        id
    }

    /// Deregister a principal, returning its members.
    pub fn remove_principal(&mut self, id: ProcId) -> Option<Vec<M>> {
        let p = self.principals.remove(&id)?;
        self.inner.remove_process(id);
        Some(p.members.into_keys().collect())
    }

    /// Change a principal's share.
    pub fn set_share(&mut self, id: ProcId, share: u64) -> Result<(), StaleId> {
        self.inner.set_share(id, share)
    }

    /// Whether a principal is eligible.
    pub fn is_eligible(&self, id: ProcId) -> Option<bool> {
        self.inner.is_eligible(id)
    }

    /// Members of a principal, in key order.
    pub fn members(&self, id: ProcId) -> Option<Vec<M>> {
        self.principals
            .get(&id)
            .map(|p| p.members.keys().copied().collect())
    }

    /// Replace a principal's member set (§5 refresh).
    pub fn set_membership(
        &mut self,
        id: ProcId,
        current: &[(M, Nanos)],
    ) -> Option<MembershipChange<M>> {
        let eligible = self.inner.is_eligible(id)?;
        let p = self.principals.get_mut(&id)?;
        let mut new_members = BTreeMap::new();
        let mut added = Vec::new();
        for &(m, cpu) in current {
            match p.members.remove(&m) {
                Some(last) => {
                    new_members.insert(m, last);
                }
                None => {
                    added.push(m);
                    new_members.insert(m, cpu);
                }
            }
        }
        let removed: Vec<M> = p.members.keys().copied().collect();
        p.members = new_members;
        let mut signals = Vec::new();
        if !eligible {
            signals.extend(added.iter().map(|&m| MemberTransition::Suspend(m)));
            signals.extend(removed.iter().map(|&m| MemberTransition::Resume(m)));
        }
        Some(MembershipChange {
            added,
            removed,
            signals,
        })
    }

    /// Begin an invocation: the due principals, each with its members in
    /// key order.
    pub fn begin_quantum(&mut self) -> Vec<(ProcId, Vec<M>)> {
        self.inner
            .begin_quantum()
            .into_iter()
            .map(|id| {
                let members = self
                    .principals
                    .get(&id)
                    .map(|p| p.members.keys().copied().collect())
                    .unwrap_or_default();
                (id, members)
            })
            .collect()
    }

    /// Complete the invocation with per-member readings in the order
    /// returned by [`Self::begin_quantum`]. `None` marks a member that
    /// could not be read (exited); the principal is blocked only when
    /// every member that *was* read reports blocked.
    pub fn complete_quantum(
        &mut self,
        readings: &[(ProcId, MemberReadings<M>)],
        now: Nanos,
    ) -> PrincipalOutcome<M> {
        let mut obs = Vec::new();
        for (id, members) in readings {
            let Some(p) = self.principals.get_mut(id) else {
                continue;
            };
            let mut any_read = false;
            let mut all_blocked = true;
            for (m, reading) in members {
                let Some(o) = reading else {
                    continue;
                };
                any_read = true;
                if let Some(last) = p.members.get_mut(m) {
                    let delta = o.total_cpu.saturating_sub(*last);
                    *last = o.total_cpu;
                    p.cumulative += delta;
                }
                if !o.blocked {
                    all_blocked = false;
                }
            }
            obs.push((
                *id,
                Observation {
                    total_cpu: p.cumulative,
                    blocked: any_read && all_blocked,
                },
            ));
        }
        let inner_out = self.inner.complete_quantum(&obs, now);
        let mut signals = Vec::new();
        for t in &inner_out.transitions {
            let id = t.proc_id();
            if let Some(p) = self.principals.get(&id) {
                for &m in p.members.keys() {
                    signals.push(match t {
                        Transition::Resume(_) => MemberTransition::Resume(m),
                        Transition::Suspend(_) => MemberTransition::Suspend(m),
                    });
                }
            }
        }
        PrincipalOutcome {
            signals,
            transitions: inner_out.transitions,
            cycle_completed: inner_out.cycle_completed,
            cycle_record: inner_out.cycle_record,
        }
    }
}
