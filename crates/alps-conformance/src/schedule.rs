//! Deterministic randomized schedule generation.
//!
//! A schedule is a flat list of [`Op`]s derived from a single `u64` seed.
//! Victim indices are resolved modulo the live population at drive time,
//! so every generated schedule is valid against any population history.

use alps_core::Nanos;

/// Splittable LCG (same constants as the `due_index_lockstep` suite):
/// deterministic, dependency-free, good enough to shake out schedules.
#[derive(Debug, Clone)]
pub struct Lcg(u64);

impl Lcg {
    /// Seeded constructor.
    pub fn new(seed: u64) -> Self {
        Lcg(seed ^ 0x9E37_79B9_7F4A_7C15)
    }

    /// Next raw value (upper bits of the LCG state).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 33
    }

    /// Uniform draw in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }

    /// True with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// A nanosecond amount in `0..limit`.
    pub fn nanos_below(&mut self, limit: Nanos) -> Nanos {
        Nanos(self.below(limit.0.max(1)))
    }
}

/// One step of a generated schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Register a process/principal with this share.
    Add {
        /// The share to register with.
        share: u64,
    },
    /// Remove the `victim % live`-th live entity.
    Remove {
        /// Victim selector (resolved modulo the live population).
        victim: u64,
    },
    /// Change the share of the `victim % live`-th live entity.
    SetShare {
        /// Victim selector (resolved modulo the live population).
        victim: u64,
        /// The new share.
        share: u64,
    },
    /// Run this many consecutive quanta.
    Quantum {
        /// Number of back-to-back quanta.
        repeat: u32,
    },
    /// Move the `victim % live`-th live entity's execution to CPU
    /// `cpu % cpus` (SMP schedules only; a no-op on one CPU). Raw
    /// selectors are resolved at drive time so the same schedule is valid
    /// — byte-identical, in fact — for any CPU count.
    Migrate {
        /// Victim selector (resolved modulo the live population).
        victim: u64,
        /// Target CPU selector (resolved modulo the CPU count).
        cpu: u64,
    },
}

/// Generate a schedule of `len` ops from `seed`. Quanta dominate (so
/// cycles actually complete); registration outweighs removal (so
/// populations grow into the interesting regime).
pub fn generate(seed: u64, len: usize) -> Vec<Op> {
    let mut rng = Lcg::new(seed);
    let mut ops = Vec::with_capacity(len + 1);
    // Ensure at least one process exists before anything else happens.
    ops.push(Op::Add {
        share: 1 + rng.below(8),
    });
    for _ in 0..len {
        let roll = rng.below(10);
        ops.push(match roll {
            0 | 1 => Op::Add {
                share: 1 + rng.below(8),
            },
            2 => Op::Remove {
                victim: rng.next_u64(),
            },
            3 => Op::SetShare {
                victim: rng.next_u64(),
                share: 1 + rng.below(8),
            },
            _ => Op::Quantum {
                repeat: 1 + rng.below(4) as u32,
            },
        });
    }
    ops
}

/// Generate an SMP schedule: [`generate`]'s op mix plus [`Op::Migrate`]
/// churn. The CPU count is *not* an input — migrate targets are raw
/// selectors resolved modulo the CPU count at drive time — so one seed
/// yields one schedule that drives machines of any size identically
/// (the lever behind the "engine outputs are invariant in M" suites).
pub fn generate_smp(seed: u64, len: usize) -> Vec<Op> {
    let mut rng = Lcg::new(seed ^ 0x0051_0051_0051_0051);
    let mut ops = Vec::with_capacity(len + 1);
    ops.push(Op::Add {
        share: 1 + rng.below(8),
    });
    for _ in 0..len {
        let roll = rng.below(12);
        ops.push(match roll {
            0 | 1 => Op::Add {
                share: 1 + rng.below(8),
            },
            2 => Op::Remove {
                victim: rng.next_u64(),
            },
            3 => Op::SetShare {
                victim: rng.next_u64(),
                share: 1 + rng.below(8),
            },
            4 | 5 => Op::Migrate {
                victim: rng.next_u64(),
                cpu: rng.next_u64(),
            },
            _ => Op::Quantum {
                repeat: 1 + rng.below(4) as u32,
            },
        });
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate(42, 50), generate(42, 50));
        assert_ne!(generate(42, 50), generate(43, 50));
    }

    #[test]
    fn smp_generation_is_deterministic_and_migrates() {
        assert_eq!(generate_smp(42, 50), generate_smp(42, 50));
        let ops = generate_smp(42, 200);
        assert!(ops.iter().any(|op| matches!(op, Op::Migrate { .. })));
        // The uniprocessor generator never emits migrations.
        assert!(!generate(42, 200)
            .iter()
            .any(|op| matches!(op, Op::Migrate { .. })));
    }

    #[test]
    fn schedules_start_with_an_add() {
        for seed in 0..32 {
            assert!(matches!(generate(seed, 10)[0], Op::Add { .. }));
        }
    }
}
