//! `repro` — regenerate every table and figure of the ALPS paper.
//!
//! Usage: `repro [--quick] <experiment>...` where experiments are any of
//! `table1 table2 fig4 fig5 ablation fig6 io-policy fig7 table3 fig8 fig9
//! thresholds websrv all`.

#![forbid(unsafe_code)]

mod commands;
mod output;

use commands::Scale;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--quick] [--threads N] <experiment>...\n\
         experiments: table1 table2 fig4 fig5 ablation accounting fig6 io-policy\n\
                      fig7 table3 fig8 fig9 thresholds websrv smp baseline batch bench\n\
                      conformance latency slo overload actuators verify all\n\
         --quick: shorter runs (fewer cycles/seeds) for smoke testing\n\
         --threads N: sweep worker threads (1 = serial; default ALPS_THREADS or all cores)\n\
         --cpus M: with `conformance`, drive the differential on an M-CPU\n\
                   accounting substrate (default 1; M > 1 also byte-checks\n\
                   every run against its 1-CPU baseline)\n\
         --data <dir>: also write gnuplot-ready .dat files\n\
         --check: with `bench`, run a fresh fast sweep and flag points that\n\
                  drifted more than 10x from the committed report's trend\n\
                  (exits 0 unless --strict; prints GitHub warning annotations)\n\
         --strict: make `bench --check` exit 1 when any point is outside\n\
                   tolerance (the default stays a soft gate)"
    );
    std::process::exit(2);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    args.retain(|a| a != "--quick");
    let bench_check = args.iter().any(|a| a == "--check");
    args.retain(|a| a != "--check");
    let bench_strict = args.iter().any(|a| a == "--strict");
    args.retain(|a| a != "--strict");
    let mut cpus = 1usize;
    if let Some(i) = args.iter().position(|a| a == "--cpus") {
        if i + 1 >= args.len() {
            eprintln!("error: --cpus needs a count");
            std::process::exit(2);
        }
        match args[i + 1].parse::<usize>() {
            Ok(m) if m >= 1 => cpus = m,
            _ => {
                eprintln!("error: --cpus wants an integer >= 1, got {:?}", args[i + 1]);
                std::process::exit(2);
            }
        }
        args.drain(i..=i + 1);
    }
    let data_dir = args.iter().position(|a| a == "--data").map(|i| {
        if i + 1 >= args.len() {
            eprintln!("error: --data needs a directory");
            std::process::exit(2);
        }
        std::path::PathBuf::from(args[i + 1].clone())
    });
    if let Some(i) = args.iter().position(|a| a == "--data") {
        args.drain(i..=i + 1);
    }
    output::set_data_dir(data_dir);
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        if i + 1 >= args.len() {
            eprintln!("error: --threads needs a count");
            std::process::exit(2);
        }
        match args[i + 1].parse::<usize>() {
            Ok(n) if n >= 1 => alps_sweep::set_threads(Some(n)),
            _ => {
                eprintln!(
                    "error: --threads wants an integer >= 1, got {:?}",
                    args[i + 1]
                );
                std::process::exit(2);
            }
        }
        args.drain(i..=i + 1);
    }
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "usage: repro [--quick] [--threads N] [--data <dir>] <experiment>...\n\
             run `repro all` for every table and figure; see DESIGN.md"
        );
        return;
    }
    if args.is_empty() {
        usage();
    }
    let scale = if quick { Scale::quick() } else { Scale::full() };
    let all = [
        "table1",
        "table2",
        "fig4",
        "fig5",
        "ablation",
        "accounting",
        "fig6",
        "io-policy",
        "fig7",
        "table3",
        "fig8",
        "fig9",
        "thresholds",
        "websrv",
        "smp",
        "baseline",
        "batch",
        "latency",
        "slo",
        "overload",
        "actuators",
        "verify",
    ];
    let selected: Vec<String> = if args.iter().any(|a| a == "all") {
        all.iter().map(|s| s.to_string()).collect()
    } else {
        args
    };
    for exp in &selected {
        match exp.as_str() {
            "table1" => commands::table1(),
            "table2" => commands::table2(),
            "fig4" => commands::fig4(&scale),
            "fig5" => commands::fig5(&scale),
            "ablation" => commands::ablation(&scale),
            "accounting" => commands::accounting(&scale),
            "fig6" => commands::fig6(),
            "io-policy" => commands::io_policy(),
            "fig7" => commands::fig7(),
            "table3" => commands::table3(),
            "fig8" => commands::scalability(&scale, "fig8"),
            "fig9" => commands::scalability(&scale, "fig9"),
            "thresholds" => commands::scalability(&scale, "thresholds"),
            "websrv" => commands::websrv(&scale),
            "smp" => commands::smp(),
            "baseline" => commands::baseline(&scale),
            "batch" => commands::batch(),
            "bench" => commands::bench(bench_check, bench_strict),
            "conformance" => commands::conformance(quick, cpus),
            "verify" => commands::verify(),
            "latency" => commands::latency(&scale),
            "slo" => commands::slo(&scale),
            "overload" => commands::overload(&scale),
            "actuators" => commands::actuators(&scale),
            other => {
                eprintln!("unknown experiment: {other}");
                usage();
            }
        }
    }
}
