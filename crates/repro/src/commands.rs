//! One function per reproduced table/figure.

use alps_core::Nanos;
use alps_sim::experiments::accounting::run_accounting_row;
use alps_sim::experiments::baseline::run_baseline_row;
use alps_sim::experiments::batch::{run_batch, BatchParams};
use alps_sim::experiments::io::{run_io, run_io_policy_ablation, IoParams};
use alps_sim::experiments::multi::{run_multi, MultiParams};
use alps_sim::experiments::scalability::{run_scalability, ScalabilityParams};
use alps_sim::experiments::smp::{run_smp, SmpParams};
use alps_sim::experiments::webserver::{run_latency_sweep, run_webserver, WebParams};
use alps_sim::experiments::workload::{run_ablation, run_workload_mean, WorkloadParams};
use alps_sim::CostModel;
use workloads::ShareModel;

use crate::output::{fmt, heading, rule, series, write_data};

/// Shared run-scale knobs.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Cycles per accuracy run (paper: 200).
    pub cycles: u64,
    /// Seeds averaged per point (paper: 3 tests).
    pub seeds: u64,
    /// Wall-clock seconds per scalability point.
    pub scal_secs: u64,
    /// Seconds of measured web-server throughput.
    pub web_secs: u64,
}

impl Scale {
    /// Paper-scale runs.
    pub fn full() -> Self {
        Scale {
            cycles: 200,
            seeds: 3,
            scal_secs: 80,
            web_secs: 60,
        }
    }

    /// Quick runs for smoke-testing the harness.
    pub fn quick() -> Self {
        Scale {
            cycles: 40,
            seeds: 1,
            scal_secs: 30,
            web_secs: 20,
        }
    }

    fn seed_list(&self) -> Vec<u64> {
        (1..=self.seeds).collect()
    }
}

/// Table 1: primary ALPS operation times — the paper's constants plus a
/// live probe of this machine.
pub fn table1() {
    heading("Table 1: Primary ALPS Operations Times (µs)");
    let model = CostModel::paper();
    println!("{:<38} {:>10} {:>14}", "operation", "paper", "this machine");
    rule(66);
    let probe = alps_os::probe_table1(400).ok();
    let (t, b, p, s) = probe
        .map(|p| {
            (
                p.timer_event_us,
                p.measure_base_us,
                p.measure_per_proc_us,
                p.signal_us,
            )
        })
        .unwrap_or((f64::NAN, f64::NAN, f64::NAN, f64::NAN));
    println!(
        "{:<38} {:>10} {:>14}",
        "Receive a timer event",
        fmt(model.timer_event.as_micros_f64(), 2),
        fmt(t, 2)
    );
    println!(
        "{:<38} {:>10} {:>14}",
        "Measure CPU time of n procs (base)",
        fmt(model.measure_base.as_micros_f64(), 2),
        fmt(b, 2)
    );
    println!(
        "{:<38} {:>10} {:>14}",
        "Measure CPU time of n procs (per n)",
        fmt(model.measure_per_proc.as_micros_f64(), 2),
        fmt(p, 2)
    );
    println!(
        "{:<38} {:>10} {:>14}",
        "Signal a process",
        fmt(model.signal.as_micros_f64(), 2),
        fmt(s, 2)
    );
    println!("\nThe simulator charges the paper column; the live column is");
    println!("measured on this host by alps-os (Linux /proc, not FreeBSD kvm).");
}

/// Table 2: workload share distributions.
pub fn table2() {
    heading("Table 2: Workload Share Distributions");
    println!("{:<8} {:>3} {:<52} {:>6}", "model", "n", "shares", "total");
    rule(72);
    for model in ShareModel::ALL {
        for n in [5usize, 10, 20] {
            let shares = model.shares(n);
            let shown = if shares.len() <= 10 {
                format!("{shares:?}")
            } else {
                format!(
                    "[{}, {}, ..., {}, {}]",
                    shares[0],
                    shares[1],
                    shares[n - 2],
                    shares[n - 1]
                )
            };
            println!(
                "{:<8} {:>3} {:<52} {:>6}",
                model.to_string(),
                n,
                shown,
                model.total_shares(n)
            );
        }
    }
}

/// Figure 4: accuracy (mean RMS relative error) vs quantum length.
pub fn fig4(scale: &Scale) {
    heading("Figure 4: Accuracy — mean RMS relative error (%) vs quantum length");
    let quanta_ms = [10u64, 15, 20, 25, 30, 35, 40];
    print!("{:<10}", "workload");
    for q in quanta_ms {
        print!(" {q:>7}ms");
    }
    println!();
    rule(10 + quanta_ms.len() * 10);
    for model in [ShareModel::Skewed, ShareModel::Linear, ShareModel::Equal] {
        for n in [5usize, 10, 20] {
            print!("{:<10}", model.workload_name(n));
            let mut rows = Vec::new();
            for q in quanta_ms {
                let mut p = WorkloadParams::new(model, n, Nanos::from_millis(q));
                p.target_cycles = scale.cycles;
                let r = run_workload_mean(&p, &scale.seed_list());
                print!(" {:>9}", fmt(r.mean_rms_error_pct, 2));
                rows.push(vec![q as f64, r.mean_rms_error_pct]);
            }
            println!();
            write_data(
                &format!("fig4_{}.dat", model.workload_name(n).to_lowercase()),
                "quantum_ms mean_rms_error_pct",
                &rows,
            );
        }
    }
    println!("\npaper: most workloads < 5%; skewed highest (up to ~25% at 40 ms).");
}

/// Figure 5: overhead (% CPU used by ALPS) vs number of processes.
pub fn fig5(scale: &Scale) {
    heading("Figure 5: Overhead — ALPS CPU / wall time (%) vs N");
    let quanta_ms = [10u64, 20, 40];
    println!(
        "{:<8} {:>4} {:>10} {:>10} {:>10}",
        "model", "N", "Q=10ms", "Q=20ms", "Q=40ms"
    );
    rule(48);
    for model in [ShareModel::Skewed, ShareModel::Linear, ShareModel::Equal] {
        let mut rows = Vec::new();
        for n in [5usize, 10, 20] {
            print!("{:<8} {:>4}", model.to_string(), n);
            let mut row = vec![n as f64];
            for q in quanta_ms {
                let mut p = WorkloadParams::new(model, n, Nanos::from_millis(q));
                p.target_cycles = scale.cycles;
                let r = run_workload_mean(&p, &scale.seed_list());
                print!(" {:>10}", fmt(r.overhead_pct, 3));
                row.push(r.overhead_pct);
            }
            println!();
            rows.push(row);
        }
        write_data(
            &format!("fig5_{}.dat", model.to_string().to_lowercase()),
            "n overhead_q10 overhead_q20 overhead_q40",
            &rows,
        );
    }
    println!("\npaper: typically < 0.3%, equal-share highest, larger Q cheaper.");
}

/// §3.2 ablation: the lazy-measurement optimization.
pub fn ablation(scale: &Scale) {
    heading("§3.2 ablation: lazy measurement on vs off (overhead reduction)");
    println!(
        "{:<10} {:>6} {:>12} {:>12} {:>8} {:>10} {:>10}",
        "workload", "Q(ms)", "ovh opt(%)", "ovh unopt(%)", "factor", "err opt", "err unopt"
    );
    rule(76);
    let mut factors = Vec::new();
    for model in ShareModel::ALL {
        for n in [5usize, 10, 20] {
            for q in [10u64, 20, 40] {
                let mut p = WorkloadParams::new(model, n, Nanos::from_millis(q));
                p.target_cycles = scale.cycles.min(60);
                let row = run_ablation(&p);
                factors.push(row.factor);
                println!(
                    "{:<10} {:>6} {:>12} {:>12} {:>8} {:>10} {:>10}",
                    row.workload,
                    q,
                    fmt(row.overhead_opt_pct, 3),
                    fmt(row.overhead_unopt_pct, 3),
                    fmt(row.factor, 2),
                    fmt(row.error_opt_pct, 2),
                    fmt(row.error_unopt_pct, 2)
                );
            }
        }
    }
    let (lo, hi) = factors
        .iter()
        .fold((f64::INFINITY, 0.0f64), |(lo, hi), &f| {
            (lo.min(f), hi.max(f))
        });
    println!(
        "\nfactor range here: {:.1}x – {:.1}x (paper: 1.8x – 5.9x)",
        lo, hi
    );
}

/// Measurement-granularity ablation: exact vs statclock-sampled readings.
pub fn accounting(scale: &Scale) {
    heading("ablation: exact vs tick-sampled CPU readings (error %, overhead %)");
    println!(
        "{:<10} {:>6} {:>11} {:>13} {:>11} {:>13}",
        "workload", "Q(ms)", "err exact", "err sampled", "ovh exact", "ovh sampled"
    );
    rule(72);
    for model in [ShareModel::Skewed, ShareModel::Linear, ShareModel::Equal] {
        for n in [5usize, 10, 20] {
            for q in [10u64, 40] {
                let row =
                    run_accounting_row(model, n, Nanos::from_millis(q), scale.cycles.min(80), 1);
                println!(
                    "{:<10} {:>6} {:>11} {:>13} {:>11} {:>13}",
                    row.workload,
                    q,
                    fmt(row.error_exact_pct, 2),
                    fmt(row.error_sampled_pct, 2),
                    fmt(row.overhead_exact_pct, 3),
                    fmt(row.overhead_sampled_pct, 3)
                );
            }
        }
    }
    println!(
        "
a user-level scheduler is only as precise as the counters it"
    );
    println!("reads: tick-sampled counters hit single-share processes hardest.");
}

/// Figure 6: the I/O experiment.
pub fn fig6() {
    heading("Figure 6: share (%) per cycle while the 2-share process does I/O");
    let p = IoParams::default();
    let r = run_io(&p);
    let window = |s: &[(u64, f64)]| -> Vec<(f64, f64)> {
        s.iter()
            .filter(|&&(cy, _)| (560..=650).contains(&cy))
            .map(|&(cy, v)| (cy as f64, v))
            .collect()
    };
    series("1 share (A)", &window(&r.a), 30);
    series("2 shares, I/O (B)", &window(&r.b), 30);
    series("3 shares (C)", &window(&r.c), 30);
    for (name, s) in [("a", &r.a), ("b", &r.b), ("c", &r.c)] {
        let rows: Vec<Vec<f64>> = s.iter().map(|&(cy, v)| vec![cy as f64, v]).collect();
        write_data(&format!("fig6_{name}.dat"), "cycle share_pct", &rows);
    }
    println!(
        "\nsteady state (A,B,C): ({}, {}, {})%  [ideal 16.7/33.3/50.0]",
        fmt(r.steady_split.0, 1),
        fmt(r.steady_split.1, 1),
        fmt(r.steady_split.2, 1)
    );
    println!(
        "while B blocked (A,C): ({}, {})%      [paper: 25/75]",
        fmt(r.blocked_split.0, 1),
        fmt(r.blocked_split.1, 1)
    );
}

/// §2.4 ablation: blocked-process accounting policies.
pub fn io_policy() {
    heading("§2.4 ablation: blocked-process policies on the Figure-6 workload");
    let base = IoParams {
        io_start_cycle: 100,
        end_cycle: 200,
        ..IoParams::default()
    };
    println!(
        "{:<22} {:>22} {:>18}",
        "policy", "steady (A,B,C) %", "B-blocked (A,C) %"
    );
    rule(66);
    for row in run_io_policy_ablation(&base) {
        println!(
            "{:<22} {:>6},{:>6},{:>6} {:>9},{:>7}",
            format!("{:?}", row.policy),
            fmt(row.steady_split.0, 1),
            fmt(row.steady_split.1, 1),
            fmt(row.steady_split.2, 1),
            fmt(row.blocked_split.0, 1),
            fmt(row.blocked_split.1, 1)
        );
    }
    println!("\nthe paper's OneQuantumPenalty keeps the cycle moving and splits");
    println!("the blocked process's time 1:3; NoPenalty stalls cycle turnover.");
}

/// Figure 7: cumulative CPU for three concurrent ALPSs.
pub fn fig7() {
    heading("Figure 7: cumulative CPU (ms) vs wall time (ms), 3 ALPSs");
    let r = run_multi(&MultiParams::default());
    for s in &r.series {
        series(&s.label, &s.points, 15);
        let rows: Vec<Vec<f64>> = s.points.iter().map(|&(t, c)| vec![t, c]).collect();
        write_data(
            &format!("fig7_{}share_{}.dat", s.share, s.group.to_lowercase()),
            "wall_ms cumulative_cpu_ms",
            &rows,
        );
    }
    println!(
        "\nphase-3 group fractions (A,B,C): {:.2}/{:.2}/{:.2}  [paper: ~1/3 each]",
        r.phase3_group_fractions[0], r.phase3_group_fractions[1], r.phase3_group_fractions[2]
    );
}

/// Table 3: accuracy of multiple ALPSs.
pub fn table3() {
    heading("Table 3: Accuracy of Multiple ALPSs");
    let r = run_multi(&MultiParams::default());
    println!(
        "{:>2} {:>7} | {:>7} {:>5} | {:>7} {:>5} | {:>7} {:>5}",
        "S", "target", "ph1 %", "re%", "ph2 %", "re%", "ph3 %", "re%"
    );
    rule(60);
    for row in &r.table3 {
        let cell = |c: Option<(f64, f64)>| match c {
            Some((pct, re)) => (fmt(pct, 1), fmt(re, 1)),
            None => ("-".into(), "-".into()),
        };
        let (p1, e1) = cell(row.phases[0]);
        let (p2, e2) = cell(row.phases[1]);
        let (p3, e3) = cell(row.phases[2]);
        println!(
            "{:>2} {:>7} | {:>7} {:>5} | {:>7} {:>5} | {:>7} {:>5}",
            row.share,
            fmt(row.target_pct, 1),
            p1,
            e1,
            p2,
            e2,
            p3,
            e3
        );
    }
    println!(
        "\nmean relative error: {}% (paper: 0.93%)",
        fmt(r.mean_rel_err_pct, 2)
    );
}

/// Figures 8 and 9 plus the §4.2 threshold analysis.
pub fn scalability(scale: &Scale, which: &str) {
    match which {
        "fig8" => heading("Figure 8: overhead (%) vs N, equal shares (5 per process)"),
        "fig9" => heading("Figure 9: mean RMS relative error (%) vs N, equal shares"),
        _ => heading("§4.2: breakdown thresholds (predicted vs observed)"),
    }
    for q in [10u64, 20, 40] {
        let mut p = ScalabilityParams::paper(Nanos::from_millis(q));
        p.duration = Nanos::from_secs(scale.scal_secs);
        let r = run_scalability(&p);
        let rows: Vec<Vec<f64>> = r
            .points
            .iter()
            .map(|pt| {
                vec![
                    pt.n as f64,
                    pt.overhead_pct,
                    pt.mean_rms_error_pct,
                    pt.quanta_serviced_frac,
                ]
            })
            .collect();
        write_data(
            &format!("fig8_9_q{q}ms.dat"),
            "n overhead_pct error_pct serviced_frac",
            &rows,
        );
        println!("\nquantum {q} ms:");
        match which {
            "fig8" => {
                println!("{:>5} {:>12}", "N", "overhead(%)");
                for pt in &r.points {
                    println!("{:>5} {:>12}", pt.n, fmt(pt.overhead_pct, 3));
                }
            }
            "fig9" => {
                println!("{:>5} {:>12} {:>10}", "N", "error(%)", "serviced");
                for pt in &r.points {
                    println!(
                        "{:>5} {:>12} {:>10}",
                        pt.n,
                        fmt(pt.mean_rms_error_pct, 2),
                        fmt(pt.quanta_serviced_frac, 3)
                    );
                }
            }
            _ => {}
        }
        if let Some(a) = &r.analysis {
            println!(
                "  fit U_{q}(N) = {:.4}·N + {:.4}   (r² = {:.3})",
                a.fit.slope, a.fit.intercept, a.fit.r_squared
            );
            println!(
                "  predicted N* = {:.0}   observed N* = {}",
                a.predicted_threshold,
                r.observed_threshold
                    .map(|n| n.to_string())
                    .unwrap_or_else(|| "none".into())
            );
        }
    }
    println!("\npaper: fits U10=.0639N+.060, U20=.0338N+.034, U40=.0172N+.016;");
    println!("predicted thresholds 39/54/75, observed 40/60/90.");
}

/// Quantum-length vs latency trade-off on the web workload (extension).
pub fn latency(scale: &Scale) {
    heading("extension: quantum length vs request latency (web workload)");
    let base = WebParams {
        duration: Nanos::from_secs(scale.web_secs.min(40)),
        warmup: Nanos::from_secs(5),
        ..WebParams::default()
    };
    let pts = run_latency_sweep(&base, &[25, 50, 100, 200, 400]);
    println!(
        "{:>7} {:>17} {:>21} {:>21} {:>8}",
        "Q (ms)", "fractions A/B/C", "p50 ms A/B/C", "p95 ms A/B/C", "ovh %"
    );
    rule(80);
    let mut rows = Vec::new();
    for pt in &pts {
        println!(
            "{:>7} {:>5.2}/{:.2}/{:.2} {:>7}/{:>6}/{:>6} {:>7}/{:>6}/{:>6} {:>8}",
            pt.quantum_ms,
            pt.fractions[0],
            pt.fractions[1],
            pt.fractions[2],
            fmt(pt.p50_ms[0], 0),
            fmt(pt.p50_ms[1], 0),
            fmt(pt.p50_ms[2], 0),
            fmt(pt.p95_ms[0], 0),
            fmt(pt.p95_ms[1], 0),
            fmt(pt.p95_ms[2], 0),
            fmt(pt.overhead_pct, 2)
        );
        rows.push(vec![
            pt.quantum_ms,
            pt.p50_ms[0],
            pt.p95_ms[0],
            pt.p50_ms[2],
            pt.p95_ms[2],
            pt.overhead_pct,
        ]);
    }
    write_data(
        "latency_sweep.dat",
        "quantum_ms siteA_p50 siteA_p95 siteC_p50 siteC_p95 overhead_pct",
        &rows,
    );
    println!("\nthroughput fractions hold at every quantum; the throttled site's");
    println!("tail latency grows with Q (stalls come in whole-cycle units) while");
    println!("ALPS overhead shrinks — the third axis of the paper's Q trade-off.");
}

/// One-command verification: quick runs of every reproduction target,
/// checked against the paper's claims with generous tolerances.
pub fn verify() {
    heading("verify: quick pass/fail against the paper's claims");
    let mut results: Vec<(&str, bool, String)> = Vec::new();

    // Accuracy (Fig. 4): Linear5 under 8% at 10ms.
    {
        let mut p = WorkloadParams::new(ShareModel::Linear, 5, Nanos::from_millis(10));
        p.target_cycles = 40;
        let r = run_workload_mean(&p, &[1]);
        results.push((
            "Fig4: Linear5 error < 8%",
            r.mean_rms_error_pct < 8.0,
            format!("{:.2}%", r.mean_rms_error_pct),
        ));
    }
    // Overhead (Fig. 5): Equal20 under 1%.
    {
        let mut p = WorkloadParams::new(ShareModel::Equal, 20, Nanos::from_millis(10));
        p.target_cycles = 30;
        let r = run_workload_mean(&p, &[1]);
        results.push((
            "Fig5: Equal20 overhead < 1%",
            r.overhead_pct < 1.0,
            format!("{:.3}%", r.overhead_pct),
        ));
    }
    // Ablation (§3.2): factor above 1.8 for Equal10.
    {
        let mut p = WorkloadParams::new(ShareModel::Equal, 10, Nanos::from_millis(10));
        p.target_cycles = 25;
        let row = run_ablation(&p);
        results.push((
            "§3.2: optimization factor > 1.8x",
            row.factor > 1.8,
            format!("{:.2}x", row.factor),
        ));
    }
    // I/O (Fig. 6): blocked split near 25/75.
    {
        let p = IoParams {
            io_start_cycle: 60,
            end_cycle: 120,
            ..IoParams::default()
        };
        let r = run_io(&p);
        let ok = (r.blocked_split.0 - 25.0).abs() < 6.0 && (r.blocked_split.1 - 75.0).abs() < 6.0;
        results.push((
            "Fig6: blocked split ~25/75",
            ok,
            format!("{:.1}/{:.1}", r.blocked_split.0, r.blocked_split.1),
        ));
    }
    // Multi-ALPS (Table 3): mean error < 4%.
    {
        let r = run_multi(&MultiParams::default());
        results.push((
            "Table3: mean error < 4% (paper 0.93%)",
            r.mean_rel_err_pct < 4.0,
            format!("{:.2}%", r.mean_rel_err_pct),
        ));
    }
    // Breakdown (§4.2): control fine at N=20, lost at N=90 (10ms).
    {
        use alps_sim::experiments::scalability::run_scalability_point;
        let fine = run_scalability_point(20, Nanos::from_millis(10), Nanos::from_secs(30), 1);
        let broken = run_scalability_point(90, Nanos::from_millis(10), Nanos::from_secs(50), 1);
        results.push((
            "§4.2: N=20 controlled, N=90 broken",
            fine.quanta_serviced_frac > 0.95 && broken.quanta_serviced_frac < 0.9,
            format!(
                "serviced {:.2} / {:.2}",
                fine.quanta_serviced_frac, broken.quanta_serviced_frac
            ),
        ));
    }
    // Web server (§5): ordered throughput, big site ~50%.
    {
        let p = WebParams {
            workers_per_site: 15,
            active_per_site: 6,
            duration: Nanos::from_secs(20),
            warmup: Nanos::from_secs(3),
            ..WebParams::default()
        };
        let r = run_webserver(&p);
        let ok = r.alps_rps[0] < r.alps_rps[1]
            && r.alps_rps[1] < r.alps_rps[2]
            && (r.alps_fractions[2] - 0.5).abs() < 0.07;
        results.push((
            "§5: websrv fractions ~1:2:3",
            ok,
            format!(
                "{:.2}/{:.2}/{:.2}",
                r.alps_fractions[0], r.alps_fractions[1], r.alps_fractions[2]
            ),
        ));
    }

    println!("{:<42} {:>6}  measured", "claim", "pass");
    rule(72);
    let mut all = true;
    for (claim, ok, got) in &results {
        all &= ok;
        println!(
            "{:<42} {:>6}  {}",
            claim,
            if *ok { "PASS" } else { "FAIL" },
            got
        );
    }
    rule(72);
    println!("overall: {}", if all { "PASS" } else { "FAIL" });
    if !all {
        std::process::exit(1);
    }
}

/// Fork-join co-completion (the intro's scientific application).
pub fn batch() {
    heading("extension: fork-join co-completion with work-proportional shares");
    let p = BatchParams::default();
    let r = run_batch(&p);
    println!("worker work (ms): {:?}\n", p.work_ms);
    println!(
        "{:>10} {:>18} {:>18}",
        "worker", "kernel done (ms)", "ALPS done (ms)"
    );
    rule(50);
    for (i, (k, a)) in r
        .kernel
        .completion_ms
        .iter()
        .zip(&r.alps.completion_ms)
        .enumerate()
    {
        println!("{:>10} {:>18} {:>18}", i, fmt(*k, 0), fmt(*a, 0));
    }
    println!(
        "\nmakespan: kernel {} ms, ALPS {} ms (same total work)",
        fmt(r.kernel.makespan_ms, 0),
        fmt(r.alps.makespan_ms, 0)
    );
    println!(
        "straggler window (last - first completion): kernel {} ms, ALPS {} ms",
        fmt(r.kernel.spread_ms, 0),
        fmt(r.alps.spread_ms, 0)
    );
    println!("\nwith shares proportional to work, the stage co-completes: the");
    println!("join never idles finished workers while stragglers run alone.");
}

/// Baseline: user-level ALPS vs in-kernel stride scheduling (§6).
pub fn baseline(scale: &Scale) {
    heading("baseline: user-level ALPS vs in-kernel stride (paper §6 trade)");
    println!(
        "{:>4} {:>12} {:>12} {:>10} {:>14}",
        "N", "ALPS err(%)", "ALPS ovh(%)", "serviced", "stride err(%)"
    );
    rule(58);
    for n in [5usize, 10, 20, 40, 60, 90] {
        let row = run_baseline_row(
            n,
            Nanos::from_millis(10),
            Nanos::from_secs(scale.scal_secs.min(50)),
            1,
        );
        println!(
            "{:>4} {:>12} {:>12} {:>10} {:>14}",
            row.n,
            fmt(row.alps_error_pct, 2),
            fmt(row.alps_overhead_pct, 3),
            fmt(row.alps_serviced, 3),
            fmt(row.stride_error_pct, 3)
        );
    }
    println!(
        "
in-kernel stride (Waldspurger & Weihl) is near-exact and has no"
    );
    println!("breakdown regime; ALPS trades those for zero kernel modification.");
}

/// Extension study: ALPS on an SMP machine (not in the paper).
pub fn smp() {
    heading("extension: ALPS on a multiprocessor (paper is uniprocessor)");
    let cases: Vec<(usize, Vec<u64>)> = vec![
        (1, vec![1, 2, 3, 4]),
        (2, vec![1, 2, 3, 4]),
        (4, vec![1, 2, 3, 4]),
        (2, vec![1, 9]),
        (4, vec![1, 1, 14]),
    ];
    for (cpus, shares) in cases {
        let p = SmpParams {
            cpus,
            shares: shares.clone(),
            quantum: Nanos::from_millis(10),
            duration: Nanos::from_secs(40),
            seed: 1,
        };
        let r = run_smp(&p);
        println!(
            "
{cpus} CPU(s), shares {shares:?}:"
        );
        println!(
            "{:>8} {:>10} {:>10} {:>10}",
            "share", "target", "feasible", "achieved"
        );
        let total: u64 = shares.iter().sum();
        for (i, &s) in shares.iter().enumerate() {
            println!(
                "{:>8} {:>10} {:>10} {:>10}",
                s,
                fmt(s as f64 / total as f64, 3),
                fmt(r.feasible_frac[i], 3),
                fmt(r.achieved_frac[i], 3)
            );
        }
        println!(
            "  overhead {}%  idle {}%  Jain fairness {} (1.0 = proportional)",
            fmt(r.overhead_pct, 3),
            fmt(100.0 * r.idle_frac, 1),
            fmt(r.jain, 4)
        );
    }
    println!(
        "
ALPS enforces any *feasible* distribution (share/S <= 1/cpus per"
    );
    println!("process); infeasible shares clamp at one full CPU, as water-filling");
    println!("predicts. This is the surplus-fair observation of Chandra et al.");
}

/// §5: the shared web server.
pub fn websrv(scale: &Scale) {
    heading("§5: shared web server — throughput (req/s) per site");
    let p = WebParams {
        duration: Nanos::from_secs(scale.web_secs),
        ..WebParams::default()
    };
    let r = run_webserver(&p);
    println!(
        "{:<24} {:>8} {:>8} {:>8} {:>8}",
        "configuration", "site A", "site B", "site C", "total"
    );
    rule(60);
    let total_b: f64 = r.baseline_rps.iter().sum();
    let total_a: f64 = r.alps_rps.iter().sum();
    println!(
        "{:<24} {:>8} {:>8} {:>8} {:>8}",
        "kernel scheduler alone",
        fmt(r.baseline_rps[0], 1),
        fmt(r.baseline_rps[1], 1),
        fmt(r.baseline_rps[2], 1),
        fmt(total_b, 1)
    );
    println!(
        "{:<24} {:>8} {:>8} {:>8} {:>8}",
        "ALPS, shares {1,2,3}",
        fmt(r.alps_rps[0], 1),
        fmt(r.alps_rps[1], 1),
        fmt(r.alps_rps[2], 1),
        fmt(total_a, 1)
    );
    println!(
        "\nALPS throughput fractions: {:.2}/{:.2}/{:.2}  [ideal 0.17/0.33/0.50]",
        r.alps_fractions[0], r.alps_fractions[1], r.alps_fractions[2]
    );
    println!(
        "request p50 latency (ms)  kernel: {}/{}/{}   ALPS: {}/{}/{}",
        fmt(r.baseline_p50_ms[0], 0),
        fmt(r.baseline_p50_ms[1], 0),
        fmt(r.baseline_p50_ms[2], 0),
        fmt(r.alps_p50_ms[0], 0),
        fmt(r.alps_p50_ms[1], 0),
        fmt(r.alps_p50_ms[2], 0)
    );
    println!(
        "request p95 latency (ms)  under ALPS: {}/{}/{}  (throttled sites trade latency for others' isolation)",
        fmt(r.alps_p95_ms[0], 0),
        fmt(r.alps_p95_ms[1], 0),
        fmt(r.alps_p95_ms[2], 0)
    );
    println!("ALPS overhead: {}%", fmt(r.overhead_pct, 2));
    println!("paper: {{29,30,40}} req/s without ALPS; {{18,35,53}} with ALPS.");
}
