//! Small helpers for paper-style text tables and series output.

/// Print a rule line.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Print a section heading.
pub fn heading(title: &str) {
    println!();
    rule(72);
    println!("{title}");
    rule(72);
}

/// Format a float with fixed precision, or a dash for NaN.
pub fn fmt(v: f64, prec: usize) -> String {
    if v.is_nan() {
        "-".to_string()
    } else {
        format!("{v:.prec$}")
    }
}

/// Print an `(x, y)` series as two columns with a label header, thinned to
/// at most `max_rows` evenly spaced rows (figures have hundreds of points;
/// the console wants fewer).
pub fn series(label: &str, points: &[(f64, f64)], max_rows: usize) {
    println!("# {label} ({} points)", points.len());
    if points.is_empty() {
        return;
    }
    let step = (points.len() / max_rows.max(1)).max(1);
    for (i, (x, y)) in points.iter().enumerate() {
        if i % step == 0 || i == points.len() - 1 {
            println!("{:>12.1} {:>12.2}", x, y);
        }
    }
}

use std::path::PathBuf;
use std::sync::OnceLock;

static DATA_DIR: OnceLock<Option<PathBuf>> = OnceLock::new();

/// Set the directory for machine-readable data files (once, from main).
pub fn set_data_dir(dir: Option<PathBuf>) {
    let _ = DATA_DIR.set(dir);
}

/// Write a whitespace-separated data file (gnuplot-ready) if a data
/// directory was configured with `--data`. Errors are reported, not fatal.
pub fn write_data(name: &str, header: &str, rows: &[Vec<f64>]) {
    let Some(Some(dir)) = DATA_DIR.get().map(|d| d.as_ref()) else {
        return;
    };
    let path = dir.join(name);
    let mut body = String::with_capacity(rows.len() * 24 + header.len() + 4);
    body.push_str("# ");
    body.push_str(header);
    body.push('\n');
    for row in rows {
        let cells: Vec<String> = row.iter().map(|v| format!("{v:.6}")).collect();
        body.push_str(&cells.join(" "));
        body.push('\n');
    }
    if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, body)) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    } else {
        eprintln!("(wrote {})", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_handles_nan_and_precision() {
        assert_eq!(fmt(f64::NAN, 2), "-");
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt(1.5, 0), "2");
    }

    #[test]
    fn write_data_is_a_noop_without_a_dir() {
        // set_data_dir may already be set by another test; write_data must
        // not panic either way.
        write_data("never.dat", "a b", &[vec![1.0, 2.0]]);
    }

    #[test]
    fn write_data_writes_when_configured() {
        let dir = std::env::temp_dir().join(format!("repro-test-{}", std::process::id()));
        set_data_dir(Some(dir.clone()));
        write_data("t.dat", "x y", &[vec![1.0, 2.5], vec![2.0, 3.5]]);
        let body = std::fs::read_to_string(dir.join("t.dat")).expect("file written");
        assert!(body.starts_with("# x y\n"));
        assert!(body.contains("1.000000 2.500000"));
        let _ = std::fs::remove_dir_all(dir);
    }
}
