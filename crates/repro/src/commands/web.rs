//! The shared web server (§5) and the quantum-vs-latency extension.

use alps_core::Nanos;
use alps_sim::experiments::webserver::{run_latency_sweep, run_webserver, WebParams};

use super::table::Table;
use super::Scale;
use crate::output::{fmt, heading, rule, write_data};

/// Quantum-length vs latency trade-off on the web workload (extension).
pub fn latency(scale: &Scale) {
    heading("extension: quantum length vs request latency (web workload)");
    let base = WebParams {
        duration: Nanos::from_secs(scale.web_secs.min(40)),
        warmup: Nanos::from_secs(5),
        ..WebParams::default()
    };
    let pts = run_latency_sweep(&base, &[25, 50, 100, 200, 400]);
    println!(
        "{:>7} {:>17} {:>21} {:>21} {:>8}",
        "Q (ms)", "fractions A/B/C", "p50 ms A/B/C", "p95 ms A/B/C", "ovh %"
    );
    rule(80);
    let mut rows = Vec::new();
    for pt in &pts {
        println!(
            "{:>7} {:>5.2}/{:.2}/{:.2} {:>7}/{:>6}/{:>6} {:>7}/{:>6}/{:>6} {:>8}",
            pt.quantum_ms,
            pt.fractions[0],
            pt.fractions[1],
            pt.fractions[2],
            fmt(pt.p50_ms[0], 0),
            fmt(pt.p50_ms[1], 0),
            fmt(pt.p50_ms[2], 0),
            fmt(pt.p95_ms[0], 0),
            fmt(pt.p95_ms[1], 0),
            fmt(pt.p95_ms[2], 0),
            fmt(pt.overhead_pct, 2)
        );
        rows.push(vec![
            pt.quantum_ms,
            pt.p50_ms[0],
            pt.p95_ms[0],
            pt.p50_ms[2],
            pt.p95_ms[2],
            pt.overhead_pct,
        ]);
    }
    write_data(
        "latency_sweep.dat",
        "quantum_ms siteA_p50 siteA_p95 siteC_p50 siteC_p95 overhead_pct",
        &rows,
    );
    println!("\nthroughput fractions hold at every quantum; the throttled site's");
    println!("tail latency grows with Q (stalls come in whole-cycle units) while");
    println!("ALPS overhead shrinks — the third axis of the paper's Q trade-off.");
}

/// §5: the shared web server.
pub fn websrv(scale: &Scale) {
    heading("§5: shared web server — throughput (req/s) per site");
    let p = WebParams {
        duration: Nanos::from_secs(scale.web_secs),
        ..WebParams::default()
    };
    let r = run_webserver(&p);
    let table = Table::new(&[-24, 8, 8, 8, 8]);
    table.header(&["configuration", "site A", "site B", "site C", "total"]);
    let total_b: f64 = r.baseline_rps.iter().sum();
    let total_a: f64 = r.alps_rps.iter().sum();
    table.row(&[
        "kernel scheduler alone".into(),
        fmt(r.baseline_rps[0], 1),
        fmt(r.baseline_rps[1], 1),
        fmt(r.baseline_rps[2], 1),
        fmt(total_b, 1),
    ]);
    table.row(&[
        "ALPS, shares {1,2,3}".into(),
        fmt(r.alps_rps[0], 1),
        fmt(r.alps_rps[1], 1),
        fmt(r.alps_rps[2], 1),
        fmt(total_a, 1),
    ]);
    println!(
        "\nALPS throughput fractions: {:.2}/{:.2}/{:.2}  [ideal 0.17/0.33/0.50]",
        r.alps_fractions[0], r.alps_fractions[1], r.alps_fractions[2]
    );
    println!(
        "request p50 latency (ms)  kernel: {}/{}/{}   ALPS: {}/{}/{}",
        fmt(r.baseline_p50_ms[0], 0),
        fmt(r.baseline_p50_ms[1], 0),
        fmt(r.baseline_p50_ms[2], 0),
        fmt(r.alps_p50_ms[0], 0),
        fmt(r.alps_p50_ms[1], 0),
        fmt(r.alps_p50_ms[2], 0)
    );
    println!(
        "request p95 latency (ms)  under ALPS: {}/{}/{}  (throttled sites trade latency for others' isolation)",
        fmt(r.alps_p95_ms[0], 0),
        fmt(r.alps_p95_ms[1], 0),
        fmt(r.alps_p95_ms[2], 0)
    );
    println!("ALPS overhead: {}%", fmt(r.overhead_pct, 2));
    println!("paper: {{29,30,40}} req/s without ALPS; {{18,35,53}} with ALPS.");
}
