//! Table 1: the primary-operation cost model vs a live probe.

use alps_sim::CostModel;

use super::table::Table;
use crate::output::{fmt, heading};

/// Table 1: primary ALPS operation times — the paper's constants plus a
/// live probe of this machine.
pub fn table1() {
    heading("Table 1: Primary ALPS Operations Times (µs)");
    let model = CostModel::paper();
    let table = Table::new(&[-38, 10, 14]);
    table.header(&["operation", "paper", "this machine"]);
    let probe = alps_os::probe_table1(400).ok();
    let (timer, base, per_proc, signal) = probe
        .map(|p| {
            (
                p.timer_event_us,
                p.measure_base_us,
                p.measure_per_proc_us,
                p.signal_us,
            )
        })
        .unwrap_or((f64::NAN, f64::NAN, f64::NAN, f64::NAN));
    table.row(&[
        "Receive a timer event".into(),
        fmt(model.timer_event.as_micros_f64(), 2),
        fmt(timer, 2),
    ]);
    table.row(&[
        "Measure CPU time of n procs (base)".into(),
        fmt(model.measure_base.as_micros_f64(), 2),
        fmt(base, 2),
    ]);
    table.row(&[
        "Measure CPU time of n procs (per n)".into(),
        fmt(model.measure_per_proc.as_micros_f64(), 2),
        fmt(per_proc, 2),
    ]);
    table.row(&[
        "Signal a process".into(),
        fmt(model.signal.as_micros_f64(), 2),
        fmt(signal, 2),
    ]);
    println!("\nThe simulator charges the paper column; the live column is");
    println!("measured on this host by alps-os (Linux /proc, not FreeBSD kvm).");
}
