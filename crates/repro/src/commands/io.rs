//! The I/O experiment (Figure 6) and the §2.4 blocked-process-policy
//! ablation.

use alps_sim::experiments::io::{run_io, run_io_policy_ablation, IoParams};

use crate::output::{fmt, heading, rule, series, write_data};

/// Figure 6: the I/O experiment.
pub fn fig6() {
    heading("Figure 6: share (%) per cycle while the 2-share process does I/O");
    let p = IoParams::default();
    let r = run_io(&p);
    let window = |s: &[(u64, f64)]| -> Vec<(f64, f64)> {
        s.iter()
            .filter(|&&(cy, _)| (560..=650).contains(&cy))
            .map(|&(cy, v)| (cy as f64, v))
            .collect()
    };
    series("1 share (A)", &window(&r.a), 30);
    series("2 shares, I/O (B)", &window(&r.b), 30);
    series("3 shares (C)", &window(&r.c), 30);
    for (name, s) in [("a", &r.a), ("b", &r.b), ("c", &r.c)] {
        let rows: Vec<Vec<f64>> = s.iter().map(|&(cy, v)| vec![cy as f64, v]).collect();
        write_data(&format!("fig6_{name}.dat"), "cycle share_pct", &rows);
    }
    println!(
        "\nsteady state (A,B,C): ({}, {}, {})%  [ideal 16.7/33.3/50.0]",
        fmt(r.steady_split.0, 1),
        fmt(r.steady_split.1, 1),
        fmt(r.steady_split.2, 1)
    );
    println!(
        "while B blocked (A,C): ({}, {})%      [paper: 25/75]",
        fmt(r.blocked_split.0, 1),
        fmt(r.blocked_split.1, 1)
    );
}

/// §2.4 ablation: blocked-process accounting policies.
pub fn io_policy() {
    heading("§2.4 ablation: blocked-process policies on the Figure-6 workload");
    let base = IoParams {
        io_start_cycle: 100,
        end_cycle: 200,
        ..IoParams::default()
    };
    println!(
        "{:<22} {:>22} {:>18}",
        "policy", "steady (A,B,C) %", "B-blocked (A,C) %"
    );
    rule(66);
    for row in run_io_policy_ablation(&base) {
        println!(
            "{:<22} {:>6},{:>6},{:>6} {:>9},{:>7}",
            format!("{:?}", row.policy),
            fmt(row.steady_split.0, 1),
            fmt(row.steady_split.1, 1),
            fmt(row.steady_split.2, 1),
            fmt(row.blocked_split.0, 1),
            fmt(row.blocked_split.1, 1)
        );
    }
    println!("\nthe paper's OneQuantumPenalty keeps the cycle moving and splits");
    println!("the blocked process's time 1:3; NoPenalty stalls cycle turnover.");
}
