//! Extension study: ALPS on an SMP machine (not in the paper).

use alps_core::Nanos;
use alps_sim::experiments::smp::{run_smp, SmpParams};

use crate::output::{fmt, heading};

/// ALPS on a multiprocessor: feasible distributions are enforced,
/// infeasible shares clamp at one full CPU.
pub fn smp() {
    heading("extension: ALPS on a multiprocessor (paper is uniprocessor)");
    let cases: Vec<(usize, Vec<u64>)> = vec![
        (1, vec![1, 2, 3, 4]),
        (2, vec![1, 2, 3, 4]),
        (4, vec![1, 2, 3, 4]),
        (2, vec![1, 9]),
        (4, vec![1, 1, 14]),
    ];
    for (cpus, shares) in cases {
        let p = SmpParams {
            cpus,
            shares: shares.clone(),
            quantum: Nanos::from_millis(10),
            duration: Nanos::from_secs(40),
            seed: 1,
        };
        let r = run_smp(&p);
        println!(
            "
{cpus} CPU(s), shares {shares:?}:"
        );
        println!(
            "{:>8} {:>10} {:>10} {:>10}",
            "share", "target", "feasible", "achieved"
        );
        let total: u64 = shares.iter().sum();
        for (i, &s) in shares.iter().enumerate() {
            println!(
                "{:>8} {:>10} {:>10} {:>10}",
                s,
                fmt(s as f64 / total as f64, 3),
                fmt(r.feasible_frac[i], 3),
                fmt(r.achieved_frac[i], 3)
            );
        }
        println!(
            "  overhead {}%  idle {}%  Jain fairness {} (1.0 = proportional)",
            fmt(r.overhead_pct, 3),
            fmt(100.0 * r.idle_frac, 1),
            fmt(r.jain, 4)
        );
    }
    println!(
        "
ALPS enforces any *feasible* distribution (share/S <= 1/cpus per"
    );
    println!("process); infeasible shares clamp at one full CPU, as water-filling");
    println!("predicts. This is the surplus-fair observation of Chandra et al.");
}
