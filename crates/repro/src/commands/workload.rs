//! The synthetic-workload accuracy/overhead studies: Table 2, Figures 4
//! and 5, the §3.2 lazy-measurement ablation, and the
//! measurement-granularity ablation.

use alps_core::Nanos;
use alps_sim::experiments::accounting::run_accounting_row;
use alps_sim::experiments::workload::{run_ablation, run_workload_mean, WorkloadParams};
use workloads::ShareModel;

use super::table::Table;
use super::Scale;
use crate::output::{fmt, heading, write_data};

/// Table 2: workload share distributions.
pub fn table2() {
    heading("Table 2: Workload Share Distributions");
    let table = Table::new(&[-8, 3, -52, 6]);
    table.header(&["model", "n", "shares", "total"]);
    for model in ShareModel::ALL {
        for n in [5usize, 10, 20] {
            let shares = model.shares(n);
            let shown = if shares.len() <= 10 {
                format!("{shares:?}")
            } else {
                format!(
                    "[{}, {}, ..., {}, {}]",
                    shares[0],
                    shares[1],
                    shares[n - 2],
                    shares[n - 1]
                )
            };
            table.row(&[
                model.to_string(),
                n.to_string(),
                shown,
                model.total_shares(n).to_string(),
            ]);
        }
    }
}

/// Figure 4: accuracy (mean RMS relative error) vs quantum length.
///
/// The full (workload × quantum) grid fans out across the sweep executor
/// up front; the table renders from the collected results in grid order,
/// so the output is identical at any thread count.
pub fn fig4(scale: &Scale) {
    heading("Figure 4: Accuracy — mean RMS relative error (%) vs quantum length");
    let quanta_ms = [10u64, 15, 20, 25, 30, 35, 40];
    let mut widths = vec![-10i32];
    widths.extend(std::iter::repeat_n(9, quanta_ms.len()));
    let table = Table::new(&widths);
    let header: Vec<String> = std::iter::once("workload".to_string())
        .chain(quanta_ms.iter().map(|q| format!("{q}ms")))
        .collect();
    table.header(&header.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    let models = [ShareModel::Skewed, ShareModel::Linear, ShareModel::Equal];
    let ns = [5usize, 10, 20];
    let grid: Vec<(ShareModel, usize, u64)> = models
        .iter()
        .flat_map(|&m| ns.iter().flat_map(move |&n| quanta_ms.map(|q| (m, n, q))))
        .collect();
    let seeds = scale.seed_list();
    let results = alps_sweep::sweep_map(grid, |(model, n, q)| {
        let mut p = WorkloadParams::new(model, n, Nanos::from_millis(q));
        p.target_cycles = scale.cycles;
        run_workload_mean(&p, &seeds)
    });
    let mut results = results.into_iter();
    for model in models {
        for n in ns {
            let mut cells = vec![model.workload_name(n)];
            let mut rows = Vec::new();
            for q in quanta_ms {
                let r = results.next().expect("one result per grid cell");
                cells.push(fmt(r.mean_rms_error_pct, 2));
                rows.push(vec![q as f64, r.mean_rms_error_pct]);
            }
            table.row(&cells);
            write_data(
                &format!("fig4_{}.dat", model.workload_name(n).to_lowercase()),
                "quantum_ms mean_rms_error_pct",
                &rows,
            );
        }
    }
    println!("\npaper: most workloads < 5%; skewed highest (up to ~25% at 40 ms).");
}

/// Figure 5: overhead (% CPU used by ALPS) vs number of processes.
pub fn fig5(scale: &Scale) {
    heading("Figure 5: Overhead — ALPS CPU / wall time (%) vs N");
    let quanta_ms = [10u64, 20, 40];
    let table = Table::new(&[-8, 4, 10, 10, 10]);
    table.header(&["model", "N", "Q=10ms", "Q=20ms", "Q=40ms"]);
    let models = [ShareModel::Skewed, ShareModel::Linear, ShareModel::Equal];
    let ns = [5usize, 10, 20];
    let grid: Vec<(ShareModel, usize, u64)> = models
        .iter()
        .flat_map(|&m| ns.iter().flat_map(move |&n| quanta_ms.map(|q| (m, n, q))))
        .collect();
    let seeds = scale.seed_list();
    let mut results = alps_sweep::sweep_map(grid, |(model, n, q)| {
        let mut p = WorkloadParams::new(model, n, Nanos::from_millis(q));
        p.target_cycles = scale.cycles;
        run_workload_mean(&p, &seeds)
    })
    .into_iter();
    for model in models {
        let mut rows = Vec::new();
        for n in ns {
            let mut cells = vec![model.to_string(), n.to_string()];
            let mut row = vec![n as f64];
            for _q in quanta_ms {
                let r = results.next().expect("one result per grid cell");
                cells.push(fmt(r.overhead_pct, 3));
                row.push(r.overhead_pct);
            }
            table.row(&cells);
            rows.push(row);
        }
        write_data(
            &format!("fig5_{}.dat", model.to_string().to_lowercase()),
            "n overhead_q10 overhead_q20 overhead_q40",
            &rows,
        );
    }
    println!("\npaper: typically < 0.3%, equal-share highest, larger Q cheaper.");
}

/// §3.2 ablation: the lazy-measurement optimization.
pub fn ablation(scale: &Scale) {
    heading("§3.2 ablation: lazy measurement on vs off (overhead reduction)");
    let table = Table::new(&[-10, 6, 12, 12, 8, 10, 10]);
    table.header(&[
        "workload",
        "Q(ms)",
        "ovh opt(%)",
        "ovh unopt(%)",
        "factor",
        "err opt",
        "err unopt",
    ]);
    let grid: Vec<(ShareModel, usize, u64)> = ShareModel::ALL
        .iter()
        .flat_map(|&m| {
            [5usize, 10, 20]
                .iter()
                .flat_map(move |&n| [10u64, 20, 40].map(|q| (m, n, q)))
        })
        .collect();
    let quanta: Vec<u64> = grid.iter().map(|&(_, _, q)| q).collect();
    let rows = alps_sweep::sweep_map(grid, |(model, n, q)| {
        let mut p = WorkloadParams::new(model, n, Nanos::from_millis(q));
        p.target_cycles = scale.cycles.min(60);
        run_ablation(&p)
    });
    let mut factors = Vec::new();
    for (row, q) in rows.iter().zip(quanta) {
        factors.push(row.factor);
        table.row(&[
            row.workload.clone(),
            q.to_string(),
            fmt(row.overhead_opt_pct, 3),
            fmt(row.overhead_unopt_pct, 3),
            fmt(row.factor, 2),
            fmt(row.error_opt_pct, 2),
            fmt(row.error_unopt_pct, 2),
        ]);
    }
    let (lo, hi) = factors
        .iter()
        .fold((f64::INFINITY, 0.0f64), |(lo, hi), &f| {
            (lo.min(f), hi.max(f))
        });
    println!(
        "\nfactor range here: {:.1}x – {:.1}x (paper: 1.8x – 5.9x)",
        lo, hi
    );
}

/// Measurement-granularity ablation: exact vs statclock-sampled readings.
pub fn accounting(scale: &Scale) {
    heading("ablation: exact vs tick-sampled CPU readings (error %, overhead %)");
    let table = Table::new(&[-10, 6, 11, 13, 11, 13]);
    table.header(&[
        "workload",
        "Q(ms)",
        "err exact",
        "err sampled",
        "ovh exact",
        "ovh sampled",
    ]);
    let grid: Vec<(ShareModel, usize, u64)> =
        [ShareModel::Skewed, ShareModel::Linear, ShareModel::Equal]
            .iter()
            .flat_map(|&m| {
                [5usize, 10, 20]
                    .iter()
                    .flat_map(move |&n| [10u64, 40].map(|q| (m, n, q)))
            })
            .collect();
    let quanta: Vec<u64> = grid.iter().map(|&(_, _, q)| q).collect();
    let rows = alps_sweep::sweep_map(grid, |(model, n, q)| {
        run_accounting_row(model, n, Nanos::from_millis(q), scale.cycles.min(80), 1)
    });
    for (row, q) in rows.iter().zip(quanta) {
        table.row(&[
            row.workload.clone(),
            q.to_string(),
            fmt(row.error_exact_pct, 2),
            fmt(row.error_sampled_pct, 2),
            fmt(row.overhead_exact_pct, 3),
            fmt(row.overhead_sampled_pct, 3),
        ]);
    }
    println!(
        "
a user-level scheduler is only as precise as the counters it"
    );
    println!("reads: tick-sampled counters hit single-share processes hardest.");
}
