//! Multiple concurrent ALPSs: Figure 7 and Table 3.

use alps_sim::experiments::multi::{run_multi, MultiParams};

use crate::output::{fmt, heading, rule, series, write_data};

/// Figure 7: cumulative CPU for three concurrent ALPSs.
pub fn fig7() {
    heading("Figure 7: cumulative CPU (ms) vs wall time (ms), 3 ALPSs");
    let r = run_multi(&MultiParams::default());
    for s in &r.series {
        series(&s.label, &s.points, 15);
        let rows: Vec<Vec<f64>> = s.points.iter().map(|&(t, c)| vec![t, c]).collect();
        write_data(
            &format!("fig7_{}share_{}.dat", s.share, s.group.to_lowercase()),
            "wall_ms cumulative_cpu_ms",
            &rows,
        );
    }
    println!(
        "\nphase-3 group fractions (A,B,C): {:.2}/{:.2}/{:.2}  [paper: ~1/3 each]",
        r.phase3_group_fractions[0], r.phase3_group_fractions[1], r.phase3_group_fractions[2]
    );
}

/// Table 3: accuracy of multiple ALPSs.
pub fn table3() {
    heading("Table 3: Accuracy of Multiple ALPSs");
    let r = run_multi(&MultiParams::default());
    println!(
        "{:>2} {:>7} | {:>7} {:>5} | {:>7} {:>5} | {:>7} {:>5}",
        "S", "target", "ph1 %", "re%", "ph2 %", "re%", "ph3 %", "re%"
    );
    rule(60);
    for row in &r.table3 {
        let cell = |c: Option<(f64, f64)>| match c {
            Some((pct, re)) => (fmt(pct, 1), fmt(re, 1)),
            None => ("-".into(), "-".into()),
        };
        let (p1, e1) = cell(row.phases[0]);
        let (p2, e2) = cell(row.phases[1]);
        let (p3, e3) = cell(row.phases[2]);
        println!(
            "{:>2} {:>7} | {:>7} {:>5} | {:>7} {:>5} | {:>7} {:>5}",
            row.share,
            fmt(row.target_pct, 1),
            p1,
            e1,
            p2,
            e2,
            p3,
            e3
        );
    }
    println!(
        "\nmean relative error: {}% (paper: 0.93%)",
        fmt(r.mean_rel_err_pct, 2)
    );
}
