//! One function per reproduced table/figure, grouped by experiment area.
//!
//! Each module covers one slice of the paper: [`costs`] (Table 1),
//! [`workload`] (Table 2, Figs. 4–5, the §3.2 and accounting ablations),
//! [`io`] (Fig. 6, §2.4), [`multi`] (Fig. 7, Table 3), [`scalability`]
//! (Figs. 8–9, §4.2, the stride baseline), [`web`] (§5), plus the
//! [`batch`], [`bench`] (the committed kernsim scalability report),
//! [`conformance`] (the spec-oracle differential, SMP-aware), [`smp`],
//! [`slo`] (SLO-driven share feedback under open-loop overload),
//! [`actuators`] (per-actuation-backend Figure-4 accuracy), and
//! [`verify`] extensions. All commands keep their
//! `commands::<name>()` paths via the re-exports below, so `main.rs` is
//! oblivious to the file layout. Column alignment is shared in
//! [`table::Table`].

mod actuators;
mod batch;
mod bench;
mod conformance;
mod costs;
mod io;
mod multi;
mod scalability;
mod slo;
mod smp;
mod table;
mod verify;
mod web;
mod workload;

pub use actuators::actuators;
pub use batch::batch;
pub use bench::bench;
pub use conformance::conformance;
pub use costs::table1;
pub use io::{fig6, io_policy};
pub use multi::{fig7, table3};
pub use scalability::{baseline, scalability};
pub use slo::{overload, slo};
pub use smp::smp;
pub use verify::verify;
pub use web::{latency, websrv};
pub use workload::{ablation, accounting, fig4, fig5, table2};

/// Shared run-scale knobs.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Cycles per accuracy run (paper: 200).
    pub cycles: u64,
    /// Seeds averaged per point (paper: 3 tests).
    pub seeds: u64,
    /// Wall-clock seconds per scalability point.
    pub scal_secs: u64,
    /// Seconds of measured web-server throughput.
    pub web_secs: u64,
    /// Whether this is the `--quick` smoke scale.
    pub quick: bool,
}

impl Scale {
    /// Paper-scale runs.
    pub fn full() -> Self {
        Scale {
            cycles: 200,
            seeds: 3,
            scal_secs: 80,
            web_secs: 60,
            quick: false,
        }
    }

    /// Quick runs for smoke-testing the harness.
    pub fn quick() -> Self {
        Scale {
            cycles: 40,
            seeds: 1,
            scal_secs: 30,
            web_secs: 20,
            quick: true,
        }
    }

    pub(crate) fn seed_list(&self) -> Vec<u64> {
        (1..=self.seeds).collect()
    }
}
