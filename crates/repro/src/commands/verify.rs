//! One-command verification against the paper's headline claims.

use alps_core::Nanos;
use alps_sim::experiments::io::{run_io, IoParams};
use alps_sim::experiments::multi::{run_multi, MultiParams};
use alps_sim::experiments::webserver::{run_webserver, WebParams};
use alps_sim::experiments::workload::{run_ablation, run_workload_mean, WorkloadParams};
use workloads::ShareModel;

use super::table::Table;
use crate::output::{heading, rule};

/// A claim check: runs its experiment and reports (claim, pass, measured).
type Claim = Box<dyn FnOnce() -> (&'static str, bool, String) + Send>;

/// Seeds for the Fig. 4 / Fig. 5 means — the paper's "mean of 3 tests".
const SEEDS: &[u64] = &[1, 2, 3];

/// One-command verification: quick runs of every reproduction target,
/// checked against the paper's claims. The seven claim blocks are
/// independent experiments and fan out across the sweep executor; the
/// table below is printed from the collected results in claim order, so
/// the output is identical at any thread count.
pub fn verify() {
    heading("verify: quick pass/fail against the paper's claims");
    let claims: Vec<Claim> = vec![
        // Accuracy (Fig. 4): Linear5 under 4% at 10ms, mean of 3 seeds
        // (the single-seed check allowed 8%; the 3-seed mean measures
        // ~0.15%, so the tolerance tightens with ample margin).
        Box::new(|| {
            let mut p = WorkloadParams::new(ShareModel::Linear, 5, Nanos::from_millis(10));
            p.target_cycles = 40;
            let r = run_workload_mean(&p, SEEDS);
            (
                "Fig4: Linear5 error < 4%",
                r.mean_rms_error_pct < 4.0,
                format!("{:.2}%", r.mean_rms_error_pct),
            )
        }),
        // Overhead (Fig. 5): Equal20 under 0.6%, mean of 3 seeds (was
        // 1% single-seed; the 3-seed mean measures ~0.46%).
        Box::new(|| {
            let mut p = WorkloadParams::new(ShareModel::Equal, 20, Nanos::from_millis(10));
            p.target_cycles = 30;
            let r = run_workload_mean(&p, SEEDS);
            (
                "Fig5: Equal20 overhead < 0.6%",
                r.overhead_pct < 0.6,
                format!("{:.3}%", r.overhead_pct),
            )
        }),
        // Ablation (§3.2): factor above 1.8 for Equal10.
        Box::new(|| {
            let mut p = WorkloadParams::new(ShareModel::Equal, 10, Nanos::from_millis(10));
            p.target_cycles = 25;
            let row = run_ablation(&p);
            (
                "§3.2: optimization factor > 1.8x",
                row.factor > 1.8,
                format!("{:.2}x", row.factor),
            )
        }),
        // I/O (Fig. 6): blocked split near 25/75.
        Box::new(|| {
            let p = IoParams {
                io_start_cycle: 60,
                end_cycle: 120,
                ..IoParams::default()
            };
            let r = run_io(&p);
            let ok =
                (r.blocked_split.0 - 25.0).abs() < 6.0 && (r.blocked_split.1 - 75.0).abs() < 6.0;
            (
                "Fig6: blocked split ~25/75",
                ok,
                format!("{:.1}/{:.1}", r.blocked_split.0, r.blocked_split.1),
            )
        }),
        // Multi-ALPS (Table 3): mean error < 4%.
        Box::new(|| {
            let r = run_multi(&MultiParams::default());
            (
                "Table3: mean error < 4% (paper 0.93%)",
                r.mean_rel_err_pct < 4.0,
                format!("{:.2}%", r.mean_rel_err_pct),
            )
        }),
        // Breakdown (§4.2): control fine at N=20, lost at N=90 (10ms).
        Box::new(|| {
            use alps_sim::experiments::scalability::run_scalability_point;
            let fine = run_scalability_point(20, Nanos::from_millis(10), Nanos::from_secs(30), 1);
            let broken = run_scalability_point(90, Nanos::from_millis(10), Nanos::from_secs(50), 1);
            (
                "§4.2: N=20 controlled, N=90 broken",
                fine.quanta_serviced_frac > 0.95 && broken.quanta_serviced_frac < 0.9,
                format!(
                    "serviced {:.2} / {:.2}",
                    fine.quanta_serviced_frac, broken.quanta_serviced_frac
                ),
            )
        }),
        // Web server (§5): ordered throughput, big site ~50%.
        Box::new(|| {
            let p = WebParams {
                workers_per_site: 15,
                active_per_site: 6,
                duration: Nanos::from_secs(20),
                warmup: Nanos::from_secs(3),
                ..WebParams::default()
            };
            let r = run_webserver(&p);
            let ok = r.alps_rps[0] < r.alps_rps[1]
                && r.alps_rps[1] < r.alps_rps[2]
                && (r.alps_fractions[2] - 0.5).abs() < 0.07;
            (
                "§5: websrv fractions ~1:2:3",
                ok,
                format!(
                    "{:.2}/{:.2}/{:.2}",
                    r.alps_fractions[0], r.alps_fractions[1], r.alps_fractions[2]
                ),
            )
        }),
    ];
    let results = alps_sweep::sweep_run(claims);

    let table = Table::new(&[-42, 6, -22]);
    table.header(&["claim", "pass", "measured"]);
    let mut all = true;
    for (claim, ok, got) in &results {
        all &= ok;
        table.row(&[
            claim.to_string(),
            if *ok { "PASS" } else { "FAIL" }.to_string(),
            got.clone(),
        ]);
    }
    rule(72);
    println!("overall: {}", if all { "PASS" } else { "FAIL" });
    if !all {
        std::process::exit(1);
    }
}
