//! `repro bench` — render the committed kernsim scalability report.
//!
//! Reads `BENCH_kernsim.json` (written by `bench-scalability`, see
//! EXPERIMENTS.md) and prints the sweep as a table: per-point lifecycle
//! timings, the indexed-over-linear wall-clock speedup for each
//! `(N, lazy)` pair, the timing-wheel event queue's throughput speedup
//! over the seed binary heap per N, the event-core series (the
//! event-dense kernel-only workload where the wheel's advantage shows),
//! and the sparse-activity series (up to 10⁶ registered members, ~10³
//! active — the hierarchical deadline wheel's flat-in-N regime, reported
//! as ns per quantum and ns per due member).

use alps_bench::scalability::{
    run_sparse_best_of, run_sweep, sparse_quanta, sparse_specs, sweep_specs, BenchPoint,
    BenchReport, SparsePoint, SPARSE_ACTIVE,
};
use alps_metrics::regression::linear_fit;
use alps_metrics::Summary;

use super::table::Table;
use crate::output::{fmt, heading};

/// Default location of the committed report, relative to the repo root.
/// Override with the `ALPS_BENCH_REPORT` environment variable.
pub const REPORT_PATH: &str = "BENCH_kernsim.json";

/// Print the kernsim scalability report; with `check`, also run a fresh
/// fast sweep and compare it against the committed report's trend.
/// `strict` turns the soft gate hard: any point outside tolerance exits
/// nonzero (the default remains exit 0 — the committed numbers came
/// from a different host than the checker's).
pub fn bench(check: bool, strict: bool) {
    let path = std::env::var("ALPS_BENCH_REPORT").unwrap_or_else(|_| REPORT_PATH.to_string());
    heading(&format!("kernsim scalability sweep ({path})"));
    let json = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!(
                "cannot read {path}: {e}\n\
                 regenerate it with: cargo run --release -p alps-bench --bin bench-scalability"
            );
            return;
        }
    };
    let report = match BenchReport::parse(&json) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            return;
        }
    };
    println!(
        "quantum {} ms, share {} per process{}",
        report.quantum_ms,
        report.share,
        if report.fast { ", FAST (CI smoke)" } else { "" }
    );
    println!(
        "sweep: {:.3}s wall on {} thread{} ({} host cores); serial estimate {:.3}s ({:.2}x speedup)",
        report.sweep_wall_seconds,
        report.threads,
        if report.threads == 1 { "" } else { "s" },
        report.host_cores,
        report.serial_wall_estimate_seconds,
        report.parallel_speedup
    );
    let table = Table::new(&[5, -5, -7, -6, -5, 5, 6, 10, 10, 10, 12, 13, 9, 11, 7]);
    table.header(&[
        "N",
        "lazy",
        "queue",
        "eventq",
        "due",
        "cpus",
        "sim-s",
        "reg(ms)",
        "drive(ms)",
        "tear(ms)",
        "wall/sim-s",
        "events/s",
        "ctxsw",
        "ns/q/member",
        "drive%",
    ]);
    for p in &report.points {
        table.row(&[
            p.n.to_string(),
            p.lazy.to_string(),
            p.runqueue.clone(),
            p.event_queue.clone(),
            p.due_index.clone(),
            p.sim_cpus.to_string(),
            p.sim_seconds.to_string(),
            fmt(p.register_seconds * 1e3, 3),
            fmt(p.drive_seconds * 1e3, 3),
            fmt(p.teardown_seconds * 1e3, 3),
            fmt(p.wall_per_sim_second, 6),
            fmt(p.events_per_wall_second, 0),
            p.context_switches.to_string(),
            fmt(p.supervisor_ns_per_quantum_per_member, 1),
            fmt(p.drive_fraction * 100.0, 1),
        ]);
    }
    let mut ns: Vec<usize> = report.points.iter().map(|p| p.n).collect();
    ns.dedup();
    println!("\nindexed speedup over linear (whole-lifecycle wall clock):");
    for n in &ns {
        for lazy in [true, false] {
            for due in ["wheel", "scan"] {
                if let Some(s) = report.speedup(*n, lazy, due) {
                    println!("  N={n:<5} lazy={lazy:<5} due={due:<5} {s:.2}x");
                }
            }
        }
    }
    println!("\nscan/wheel supervisor overhead on the indexed queue (ns per quantum per member):");
    for n in &ns {
        for lazy in [true, false] {
            if let Some(r) = report.due_overhead_ratio(*n, lazy) {
                println!("  N={n:<5} lazy={lazy:<5} {r:.2}x");
            }
        }
    }

    println!(
        "\nwheel event-queue speedup over the seed heap (events per wall second, default config):"
    );
    for n in &ns {
        if let (Some(s), Some(wheel), Some(heap)) = (
            report.event_queue_speedup(*n),
            report.point(*n, true, "indexed", "wheel"),
            report.heap_point(*n),
        ) {
            println!(
                "  N={n:<5} wheel {:>12}/s heap {:>12}/s  {s:.2}x",
                fmt(wheel.events_per_wall_second, 0),
                fmt(heap.events_per_wall_second, 0),
            );
        }
    }

    if !report.event_core.is_empty() {
        println!(
            "\nevent-core series (kernel-only sleepers, ~N events pending; \
             the supervised grid above is event-sparse):"
        );
        let ec = Table::new(&[6, -6, 6, 10, 8, 10, 12]);
        ec.header(&[
            "N", "eventq", "sim-s", "events", "pending", "wall(ms)", "events/s",
        ]);
        for p in &report.event_core {
            ec.row(&[
                p.n.to_string(),
                p.event_queue.clone(),
                p.sim_seconds.to_string(),
                p.events.to_string(),
                p.pending_events.to_string(),
                fmt(p.wall_seconds * 1e3, 3),
                fmt(p.events_per_wall_second, 0),
            ]);
        }
        let mut ec_ns: Vec<usize> = report.event_core.iter().map(|p| p.n).collect();
        ec_ns.dedup();
        println!("\nevent-core wheel speedup over the seed heap (events per wall second):");
        for n in &ec_ns {
            if let Some(s) = report.event_core_speedup(*n) {
                println!("  N={n:<6} {s:.2}x");
            }
        }
    }

    println!("\nsupervisor overhead by implementation pair (ns per quantum per member, across N):");
    for queue in ["indexed", "linear"] {
        for due in ["wheel", "scan"] {
            let xs: Vec<f64> = report
                .points
                .iter()
                .filter(|p| p.runqueue == queue && p.due_index == due)
                .map(|p| p.supervisor_ns_per_quantum_per_member)
                .collect();
            let s = Summary::from_samples(&xs);
            if s.count > 0 {
                println!(
                    "  {queue:<8} {due:<6} n={:<3} mean {:>9} stddev {:>9} min {:>8} max {:>9}",
                    s.count,
                    fmt(s.mean, 1),
                    fmt(s.stddev, 1),
                    fmt(s.min, 1),
                    fmt(s.max, 1)
                );
            }
        }
    }

    let smp: Vec<&BenchPoint> = report.points.iter().filter(|p| p.sim_cpus > 1).collect();
    if !smp.is_empty() {
        println!("\nSMP series (default config; modeled-CPU dimension, same workload per N):");
        for p in &smp {
            if let Some(uni) = report.point(p.n, p.lazy, &p.runqueue, &p.due_index) {
                println!(
                    "  N={:<5} cpus={} wall/sim-s {:.6} ({:.2}x the 1-CPU point), ctxsw {}",
                    p.n,
                    p.sim_cpus,
                    p.wall_per_sim_second,
                    p.wall_per_sim_second / uni.wall_per_sim_second.max(1e-12),
                    p.context_switches,
                );
            }
        }
    }

    if !report.sparse.is_empty() {
        println!(
            "\nsparse-activity series (N registered, {} active; pure alps-core control path):",
            SPARSE_ACTIVE
        );
        let sp = Table::new(&[8, 7, -5, -11, 7, 8, 9, 10, 10, 11, 13]);
        sp.header(&[
            "N",
            "active",
            "due",
            "store",
            "quanta",
            "due/qtm",
            "reg(ms)",
            "drive(ms)",
            "tear(ms)",
            "ns/qtm",
            "ns/due-membr",
        ]);
        for p in &report.sparse {
            sp.row(&[
                p.n.to_string(),
                p.active.to_string(),
                p.due_index.clone(),
                p.member_store.clone(),
                p.quanta.to_string(),
                fmt(p.due_per_quantum, 1),
                fmt(p.register_seconds * 1e3, 3),
                fmt(p.drive_seconds * 1e3, 3),
                fmt(p.teardown_seconds * 1e3, 3),
                fmt(p.ns_per_quantum, 0),
                fmt(p.ns_per_due_member, 1),
            ]);
        }
        let mut sp_ns: Vec<usize> = report.sparse.iter().map(|p| p.n).collect();
        sp_ns.dedup();
        println!(
            "\nsparse scan/wheel per-quantum overhead ratio (chunked store; \
             the wheel is flat in N, the scan linear):"
        );
        for n in &sp_ns {
            if let Some(r) = report.sparse_scan_ratio(*n) {
                println!("  N={n:<8} {r:.2}x");
            }
        }
    }

    if check {
        let warnings = check_against_trend(&report, &path);
        if strict && warnings > 0 {
            eprintln!("bench --check --strict: failing on {warnings} out-of-tolerance point(s)");
            std::process::exit(1);
        }
    }
}

/// A checked metric of a [`BenchPoint`]: a name and an extractor.
type CheckedMetric = (&'static str, fn(&BenchPoint) -> f64);

const CHECKED_METRICS: [CheckedMetric; 2] = [
    ("wall_per_sim_second", |p| p.wall_per_sim_second),
    ("supervisor_ns_per_quantum_per_member", |p| {
        p.supervisor_ns_per_quantum_per_member
    }),
];

/// How far a fresh measurement may drift from the committed trend before
/// a warning is emitted. Wall clocks vary wildly across hosts (CI
/// machines, laptops, containers), so only order-of-magnitude drift —
/// the kind an accidental O(N) regression on the control path produces —
/// is flagged.
const RATIO_TOLERANCE: f64 = 10.0;

/// Run a fresh `--fast` sweep and compare each point against a linear
/// fit (over N) of the committed report's same series (lazy × queue ×
/// due index × modeled CPUs). Soft gate by default: warnings are printed
/// as GitHub annotations and the exit stays 0 — the committed numbers
/// came from a different host than CI's, so this can only catch gross
/// regressions. Returns the number of out-of-tolerance points so
/// `--strict` can turn them into a failing exit.
fn check_against_trend(committed: &BenchReport, path: &str) -> usize {
    heading("bench --check: fresh fast sweep vs committed trend");
    let outcome = run_sweep(&sweep_specs(true), 2);
    let mut warnings = 0usize;
    let mut compared = 0usize;
    for fresh in &outcome.points {
        for (metric, get) in CHECKED_METRICS {
            let series: Vec<(f64, f64)> = committed
                .points
                .iter()
                .filter(|p| {
                    p.lazy == fresh.lazy
                        && p.runqueue == fresh.runqueue
                        && p.event_queue == fresh.event_queue
                        && p.due_index == fresh.due_index
                        && p.sim_cpus == fresh.sim_cpus
                })
                .map(|p| (p.n as f64, get(p)))
                .collect();
            let Some(fit) = linear_fit(&series) else {
                continue; // fewer than two committed points in the series
            };
            let predicted = fit.at(fresh.n as f64);
            if predicted <= 0.0 {
                continue; // extrapolation fell below zero: nothing to judge
            }
            let measured = get(fresh);
            let ratio = measured / predicted;
            compared += 1;
            let label = format!(
                "N={} lazy={} {} eq={} {} cpus={}: {metric} measured {measured:.6} vs trend {predicted:.6} ({ratio:.2}x)",
                fresh.n, fresh.lazy, fresh.runqueue, fresh.event_queue, fresh.due_index,
                fresh.sim_cpus
            );
            if !(1.0 / RATIO_TOLERANCE..=RATIO_TOLERANCE).contains(&ratio) {
                warnings += 1;
                println!("::warning file={path}::{label}");
            } else {
                println!("  ok {label}");
            }
        }
    }
    for fresh in &fresh_sparse(2) {
        for (metric, get) in SPARSE_CHECKED_METRICS {
            // Direct same-N comparison when the committed report carries
            // the point (both normalized metrics are quanta-count
            // independent); otherwise fall back to a fit over N.
            let predicted =
                match committed.sparse_point(fresh.n, &fresh.due_index, &fresh.member_store) {
                    Some(p) => get(p),
                    None => {
                        let series: Vec<(f64, f64)> = committed
                            .sparse
                            .iter()
                            .filter(|p| {
                                p.due_index == fresh.due_index
                                    && p.member_store == fresh.member_store
                            })
                            .map(|p| (p.n as f64, get(p)))
                            .collect();
                        match linear_fit(&series) {
                            Some(fit) => fit.at(fresh.n as f64),
                            None => continue,
                        }
                    }
                };
            if predicted <= 0.0 {
                continue;
            }
            let measured = get(fresh);
            let ratio = measured / predicted;
            compared += 1;
            let label = format!(
                "sparse N={} {} {}: {metric} measured {measured:.1} vs committed {predicted:.1} ({ratio:.2}x)",
                fresh.n, fresh.due_index, fresh.member_store
            );
            if !(1.0 / RATIO_TOLERANCE..=RATIO_TOLERANCE).contains(&ratio) {
                warnings += 1;
                println!("::warning file={path}::{label}");
            } else {
                println!("  ok {label}");
            }
        }
    }
    println!(
        "\nbench --check: {compared} comparisons, {warnings} outside {RATIO_TOLERANCE}x \
         of the committed trend (soft gate unless --strict)"
    );
    warnings
}

/// A checked metric of a [`SparsePoint`]: a name and an extractor.
type SparseCheckedMetric = (&'static str, fn(&SparsePoint) -> f64);

/// The sparse-series metrics `--check` gates on: both normalized per
/// drive work, so a fast fresh point (short drive) compares cleanly
/// against the committed long-drive numbers.
const SPARSE_CHECKED_METRICS: [SparseCheckedMetric; 2] = [
    ("ns_per_quantum", |p| p.ns_per_quantum),
    ("ns_per_due_member", |p| p.ns_per_due_member),
];

/// Run the fast sparse series fresh (N = 10⁴, short drive) for
/// `--check`'s comparison against the committed report.
fn fresh_sparse(reps: usize) -> Vec<SparsePoint> {
    let quanta = sparse_quanta(true);
    sparse_specs(true)
        .into_iter()
        .map(|(n, due, store)| {
            run_sparse_best_of(n, SPARSE_ACTIVE.min(n / 10), due, store, quanta, reps)
        })
        .collect()
}
