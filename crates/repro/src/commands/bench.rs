//! `repro bench` — render the committed kernsim scalability report.
//!
//! Reads `BENCH_kernsim.json` (written by `bench-scalability`, see
//! EXPERIMENTS.md) and prints the sweep as a table: per-point lifecycle
//! timings plus the indexed-over-linear wall-clock speedup for each
//! `(N, lazy)` pair.

use alps_bench::scalability::BenchReport;

use super::table::Table;
use crate::output::{fmt, heading};

/// Default location of the committed report, relative to the repo root.
/// Override with the `ALPS_BENCH_REPORT` environment variable.
pub const REPORT_PATH: &str = "BENCH_kernsim.json";

/// Print the kernsim scalability report.
pub fn bench() {
    let path = std::env::var("ALPS_BENCH_REPORT").unwrap_or_else(|_| REPORT_PATH.to_string());
    heading(&format!("kernsim scalability sweep ({path})"));
    let json = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!(
                "cannot read {path}: {e}\n\
                 regenerate it with: cargo run --release -p alps-bench --bin bench-scalability"
            );
            return;
        }
    };
    let report = match BenchReport::parse(&json) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            return;
        }
    };
    println!(
        "quantum {} ms, share {} per process{}",
        report.quantum_ms,
        report.share,
        if report.fast { ", FAST (CI smoke)" } else { "" }
    );
    println!(
        "sweep: {:.3}s wall on {} thread{} ({} host cores); serial estimate {:.3}s ({:.2}x speedup)",
        report.sweep_wall_seconds,
        report.threads,
        if report.threads == 1 { "" } else { "s" },
        report.host_cores,
        report.serial_wall_estimate_seconds,
        report.parallel_speedup
    );
    let table = Table::new(&[5, -5, -7, 6, 10, 10, 10, 12, 13, 9]);
    table.header(&[
        "N",
        "lazy",
        "queue",
        "sim-s",
        "reg(ms)",
        "drive(ms)",
        "tear(ms)",
        "wall/sim-s",
        "events/s",
        "ctxsw",
    ]);
    for p in &report.points {
        table.row(&[
            p.n.to_string(),
            p.lazy.to_string(),
            p.runqueue.clone(),
            p.sim_seconds.to_string(),
            fmt(p.register_seconds * 1e3, 3),
            fmt(p.drive_seconds * 1e3, 3),
            fmt(p.teardown_seconds * 1e3, 3),
            fmt(p.wall_per_sim_second, 6),
            fmt(p.events_per_wall_second, 0),
            p.context_switches.to_string(),
        ]);
    }
    println!("\nindexed speedup over linear (whole-lifecycle wall clock):");
    let mut ns: Vec<usize> = report.points.iter().map(|p| p.n).collect();
    ns.dedup();
    for n in ns {
        for lazy in [true, false] {
            if let Some(s) = report.speedup(n, lazy) {
                println!("  N={n:<5} lazy={lazy:<5} {s:.2}x");
            }
        }
    }
}
