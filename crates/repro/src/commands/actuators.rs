//! Cross-actuator accuracy: the Figure-4 share-accuracy experiment run
//! once per [`ActuatorMode`] — classic stop/continue signals, cgroup
//! `cpu.weight` writes, and cgroup `cpu.max` hard caps — over the
//! deterministic in-memory cgroup filesystem, so the comparison runs
//! unprivileged anywhere.
//!
//! The kernel model is [`FakeCgroupFs::advance`]: exact weight-
//! proportional water-filling over runnable leaves, with freezer, weight,
//! and quota state all honored. Each actuator therefore earns its
//! accuracy honestly — signals duty-cycle processes on and off, weights
//! let every process run at share-proportional rates (duty-cycling
//! between weight 1 and the share weight), and caps throttle suspended
//! processes to 1% instead of stopping them.

use alps_core::{AlpsConfig, Engine, Instrumentation, Nanos, NullSink};
use alps_metrics::mean_rms_relative_error_pct;
use alps_os::cgroup::{ActuatorMode, CgroupSubstrate, FakeCgroupFs};
use workloads::ShareModel;

use super::table::Table;
use super::Scale;
use crate::output::{fmt, heading, write_data};

/// Cycles dropped from the front of every run before averaging (cold
/// start: every member begins unfrozen and ineligible).
const WARMUP_CYCLES: usize = 5;

/// Per-quantum probability (in 1/256ths) that a member sits on a wait
/// channel instead of contending for CPU — the paper's workloads are not
/// pure spinners, and share accuracy is only interesting when demand
/// fluctuates.
const BLOCK_CHANCE: u64 = 4;

/// Per-quantum probability (in 1/256ths) that the timer fires late and
/// the scheduler misses a whole quantum (§4.2's coalesced-timer overrun)
/// — the dominant accuracy hazard on a real host, because whoever is
/// running keeps consuming past its allowance until the next invocation.
const LATE_TIMER_CHANCE: u64 = 16;

/// Minimal deterministic generator (same recurrence the conformance
/// schedules use) so cells replay exactly at any sweep thread count.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// Drive one Figure-4 cell under one actuator and return its mean RMS
/// relative error (%).
fn run_cell(model: ShareModel, n: usize, mode: ActuatorMode, target_cycles: u64, seed: u64) -> f64 {
    let q = Nanos::from_millis(20);
    let cfg = AlpsConfig::default().with_quantum(q).with_cycle_log(true);
    let mut engine: Engine<i32> = Engine::new(cfg, Instrumentation::Exact);
    let mut sub = CgroupSubstrate::new(FakeCgroupFs::new(1), mode);
    let mut rng = Lcg(seed ^ 0xAC7_0000);
    let mut group = String::new();
    for (i, &share) in model.shares(n).iter().enumerate() {
        let pid = 100 + i as i32;
        sub.enroll(pid, share)
            .expect("fake enrollment is fault-free");
        engine.add_member(pid, share, Nanos::ZERO);
    }
    let max_quanta = target_cycles * 50;
    for _ in 0..max_quanta {
        // Think-time churn: each member independently blocks for this
        // quantum with probability BLOCK_CHANCE/256.
        for i in 0..n {
            use std::fmt::Write as _;
            group.clear();
            let _ = write!(group, "m{}", 100 + i as i32);
            sub.fs_mut()
                .set_blocked(&group, rng.next() % 256 < BLOCK_CHANCE);
        }
        let late = rng.next() % 256 < LATE_TIMER_CHANCE;
        sub.fs_mut().advance(if late { Nanos(q.0 * 2) } else { q });
        engine
            .run_quantum(&mut sub, &mut NullSink)
            .expect("fake substrate cannot fault");
        if engine.cycles_completed() >= target_cycles {
            break;
        }
    }
    mean_rms_relative_error_pct(engine.cycles(), WARMUP_CYCLES)
}

/// `repro actuators`: per-actuator Figure-4 accuracy comparison.
pub fn actuators(scale: &Scale) {
    heading("Actuators: Figure-4 accuracy (mean RMS relative error, %) per actuation backend");
    let models = [ShareModel::Skewed, ShareModel::Linear, ShareModel::Equal];
    let ns: &[usize] = if scale.quick { &[5, 10] } else { &[5, 10, 20] };
    let modes = ActuatorMode::ALL;
    let table = Table::new(&[-10, 9, 9, 9]);
    let header: Vec<String> = std::iter::once("workload".to_string())
        .chain(modes.iter().map(|m| m.to_string()))
        .collect();
    table.header(&header.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    let grid: Vec<(ShareModel, usize, ActuatorMode)> = models
        .iter()
        .flat_map(|&m| ns.iter().flat_map(move |&n| modes.map(|a| (m, n, a))))
        .collect();
    let cycles = scale.cycles;
    let seeds = scale.seed_list();
    let results = alps_sweep::sweep_map(grid, move |(model, n, mode)| {
        let sum: f64 = seeds
            .iter()
            .map(|&s| run_cell(model, n, mode, cycles, s))
            .sum();
        sum / seeds.len() as f64
    });
    let mut results = results.into_iter();
    let mut data = Vec::new();
    for model in models {
        for &n in ns {
            let mut cells = vec![model.workload_name(n)];
            let mut row = vec![n as f64];
            for _ in modes {
                let err = results.next().expect("one result per grid cell");
                cells.push(fmt(err, 2));
                row.push(err);
            }
            table.row(&cells);
            data.push(row);
        }
    }
    write_data("actuators.dat", "n err_signals err_weights err_caps", &data);
    println!(
        "\nsignals duty-cycle whole processes (the paper's actuator), so under\n\
         timer jitter a small-share process can overrun its entire per-cycle\n\
         entitlement in one late quantum — skewed workloads suffer most, as in\n\
         Fig. 4. weight actuation spreads an overrun across every runnable\n\
         process in share proportion and degrades most gracefully; caps\n\
         throttle suspended processes to 1% instead of stopping them. All\n\
         three actuate the same engine over the in-memory cgroupfs."
    );
}
