//! Scalability and breakdown: Figures 8 and 9, the §4.2 threshold
//! analysis, and the in-kernel stride baseline (§6).

use alps_core::Nanos;
use alps_sim::experiments::baseline::run_baseline_row;
use alps_sim::experiments::scalability::{run_scalability, ScalabilityParams};

use super::table::Table;
use super::Scale;
use crate::output::{fmt, heading, write_data};

/// Figures 8 and 9 plus the §4.2 threshold analysis.
pub fn scalability(scale: &Scale, which: &str) {
    match which {
        "fig8" => heading("Figure 8: overhead (%) vs N, equal shares (5 per process)"),
        "fig9" => heading("Figure 9: mean RMS relative error (%) vs N, equal shares"),
        _ => heading("§4.2: breakdown thresholds (predicted vs observed)"),
    }
    for q in [10u64, 20, 40] {
        let mut p = ScalabilityParams::paper(Nanos::from_millis(q));
        p.duration = Nanos::from_secs(scale.scal_secs);
        let r = run_scalability(&p);
        let rows: Vec<Vec<f64>> = r
            .points
            .iter()
            .map(|pt| {
                vec![
                    pt.n as f64,
                    pt.overhead_pct,
                    pt.mean_rms_error_pct,
                    pt.quanta_serviced_frac,
                ]
            })
            .collect();
        write_data(
            &format!("fig8_9_q{q}ms.dat"),
            "n overhead_pct error_pct serviced_frac",
            &rows,
        );
        println!("\nquantum {q} ms:");
        match which {
            "fig8" => {
                let table = Table::new(&[5, 12]);
                table.header(&["N", "overhead(%)"]);
                for pt in &r.points {
                    table.row(&[pt.n.to_string(), fmt(pt.overhead_pct, 3)]);
                }
            }
            "fig9" => {
                let table = Table::new(&[5, 12, 10]);
                table.header(&["N", "error(%)", "serviced"]);
                for pt in &r.points {
                    table.row(&[
                        pt.n.to_string(),
                        fmt(pt.mean_rms_error_pct, 2),
                        fmt(pt.quanta_serviced_frac, 3),
                    ]);
                }
            }
            _ => {}
        }
        if let Some(a) = &r.analysis {
            println!(
                "  fit U_{q}(N) = {:.4}·N + {:.4}   (r² = {:.3})",
                a.fit.slope, a.fit.intercept, a.fit.r_squared
            );
            println!(
                "  predicted N* = {:.0}   observed N* = {}",
                a.predicted_threshold,
                r.observed_threshold
                    .map(|n| n.to_string())
                    .unwrap_or_else(|| "none".into())
            );
        }
    }
    println!("\npaper: fits U10=.0639N+.060, U20=.0338N+.034, U40=.0172N+.016;");
    println!("predicted thresholds 39/54/75, observed 40/60/90.");
}

/// Baseline: user-level ALPS vs in-kernel stride scheduling (§6).
pub fn baseline(scale: &Scale) {
    heading("baseline: user-level ALPS vs in-kernel stride (paper §6 trade)");
    let table = Table::new(&[4, 12, 12, 10, 14]);
    table.header(&[
        "N",
        "ALPS err(%)",
        "ALPS ovh(%)",
        "serviced",
        "stride err(%)",
    ]);
    let rows = alps_sweep::sweep_map(vec![5usize, 10, 20, 40, 60, 90], |n| {
        run_baseline_row(
            n,
            Nanos::from_millis(10),
            Nanos::from_secs(scale.scal_secs.min(50)),
            1,
        )
    });
    for row in rows {
        table.row(&[
            row.n.to_string(),
            fmt(row.alps_error_pct, 2),
            fmt(row.alps_overhead_pct, 3),
            fmt(row.alps_serviced, 3),
            fmt(row.stride_error_pct, 3),
        ]);
    }
    println!(
        "
in-kernel stride (Waldspurger & Weihl) is near-exact and has no"
    );
    println!("breakdown regime; ALPS trades those for zero kernel modification.");
}
