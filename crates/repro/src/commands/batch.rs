//! Fork-join co-completion (the intro's scientific application).

use alps_sim::experiments::batch::{run_batch, BatchParams};

use super::table::Table;
use crate::output::{fmt, heading};

/// Fork-join co-completion with work-proportional shares.
pub fn batch() {
    heading("extension: fork-join co-completion with work-proportional shares");
    let p = BatchParams::default();
    let r = run_batch(&p);
    println!("worker work (ms): {:?}\n", p.work_ms);
    let table = Table::new(&[10, 18, 18]);
    table.header(&["worker", "kernel done (ms)", "ALPS done (ms)"]);
    for (i, (k, a)) in r
        .kernel
        .completion_ms
        .iter()
        .zip(&r.alps.completion_ms)
        .enumerate()
    {
        table.row(&[i.to_string(), fmt(*k, 0), fmt(*a, 0)]);
    }
    println!(
        "\nmakespan: kernel {} ms, ALPS {} ms (same total work)",
        fmt(r.kernel.makespan_ms, 0),
        fmt(r.alps.makespan_ms, 0)
    );
    println!(
        "straggler window (last - first completion): kernel {} ms, ALPS {} ms",
        fmt(r.kernel.spread_ms, 0),
        fmt(r.alps.spread_ms, 0)
    );
    println!("\nwith shares proportional to work, the stage co-completes: the");
    println!("join never idles finished workers while stragglers run alone.");
}
