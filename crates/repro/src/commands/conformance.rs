//! `repro conformance` — drive the spec-oracle differential from the CLI.
//!
//! Runs the SMP-aware differential harness (production `AlpsScheduler` /
//! `Engine` vs the executable-spec oracle, plus the wheel-vs-scan
//! due-index lockstep) on an M-CPU accounting substrate with randomized
//! migration churn, across the configuration corners. Every assertion
//! lives inside the harness — a completed run *is* the pass — and when
//! `--cpus M > 1` each seed is additionally checked against its one-CPU
//! baseline: the `DriveReport` fingerprint folds every per-quantum
//! observable, so report equality across M is byte-identical behavior.

use alps_conformance::harness::{
    run_core_due_index_lockstep, run_core_schedule_smp, run_engine_schedule_smp, DriveReport,
};
use alps_core::{AlpsConfig, DueIndex, Instrumentation, IoPolicy, Nanos};

use super::table::Table;
use crate::output::heading;

/// ALPS quantum for the differential runs.
const QUANTUM: Nanos = Nanos(10_000_000);

/// The configuration corners every driver sweeps: both due indexes, both
/// measurement modes, every I/O policy.
fn corners() -> [AlpsConfig; 4] {
    let base = AlpsConfig::default()
        .with_quantum(QUANTUM)
        .with_cycle_log(true);
    [
        base.with_due_index(DueIndex::Wheel)
            .with_lazy_measurement(true)
            .with_io_policy(IoPolicy::OneQuantumPenalty),
        base.with_due_index(DueIndex::Scan)
            .with_lazy_measurement(true)
            .with_io_policy(IoPolicy::OneQuantumPenalty),
        base.with_due_index(DueIndex::Wheel)
            .with_lazy_measurement(false)
            .with_io_policy(IoPolicy::NoPenalty),
        base.with_due_index(DueIndex::Scan)
            .with_lazy_measurement(false)
            .with_io_policy(IoPolicy::ForfeitAllowance),
    ]
}

/// Run the conformance suite on a `cpus`-CPU accounting substrate.
/// Panics (non-zero exit) on any divergence; `quick` trims the seed
/// count for smoke runs.
pub fn conformance(quick: bool, cpus: usize) {
    assert!(cpus >= 1, "--cpus wants at least one CPU");
    let seeds: u64 = if quick { 8 } else { 32 };
    let len = 60;
    heading(&format!(
        "spec-oracle conformance: {cpus}-CPU accounting, {seeds} seeds x {} configs",
        corners().len()
    ));

    let table = Table::new(&[-28, 9, 8, 12, 9]);
    table.header(&["driver", "quanta", "cycles", "transitions", "peak"]);
    let mut invariance_checks = 0usize;

    let mut core = DriveReport::default();
    let mut engine = DriveReport::default();
    let mut lockstep = DriveReport::default();
    for (c, cfg) in corners().into_iter().enumerate() {
        for s in 0..seeds {
            let seed = 0xC0DE_0000_0000_0000 | (c as u64) << 32 | s;
            let rep = run_core_schedule_smp(cfg, seed, len, cpus);
            if cpus > 1 {
                assert_eq!(
                    rep,
                    run_core_schedule_smp(cfg, seed, len, 1),
                    "core outputs differ between 1 and {cpus} CPUs (seed {seed})"
                );
                invariance_checks += 1;
            }
            core.quanta += rep.quanta;
            core.cycles += rep.cycles;
            core.transitions += rep.transitions;
            core.peak_live = core.peak_live.max(rep.peak_live);

            let rep = run_core_due_index_lockstep(cfg, seed, len, cpus);
            lockstep.quanta += rep.quanta;
            lockstep.cycles += rep.cycles;
            lockstep.transitions += rep.transitions;
            lockstep.peak_live = lockstep.peak_live.max(rep.peak_live);

            let rep = run_engine_schedule_smp(cfg, Instrumentation::Exact, seed, len, cpus);
            if cpus > 1 {
                assert_eq!(
                    rep,
                    run_engine_schedule_smp(cfg, Instrumentation::Exact, seed, len, 1),
                    "engine outputs differ between 1 and {cpus} CPUs (seed {seed})"
                );
                invariance_checks += 1;
            }
            engine.quanta += rep.quanta;
            engine.cycles += rep.cycles;
            engine.transitions += rep.transitions;
            engine.peak_live = engine.peak_live.max(rep.peak_live);
        }
    }
    for (name, rep) in [
        ("core vs oracle", &core),
        ("wheel vs scan lockstep", &lockstep),
        ("engine vs oracle", &engine),
    ] {
        table.row(&[
            name.to_string(),
            rep.quanta.to_string(),
            rep.cycles.to_string(),
            rep.transitions.to_string(),
            rep.peak_live.to_string(),
        ]);
    }
    // A run that proved nothing is a configuration bug, not a pass.
    assert!(core.quanta > 0 && engine.quanta > 0 && lockstep.quanta > 0);
    if cpus > 1 {
        println!(
            "\n{invariance_checks} fingerprint comparisons against the 1-CPU baseline: \
             all byte-identical"
        );
    }
    println!(
        "conformance: no divergence across {seeds} seeds x {} configs",
        corners().len()
    );
}
