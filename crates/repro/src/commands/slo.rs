//! `repro slo` / `repro overload` — the SLO-feedback extension study.
//!
//! `slo` runs the default two-tenant overload scenario across the
//! scale's seeds (fanned through `alps-sweep`), prints one tenant table
//! per seed plus a cross-seed [`Summary`] of the relative SLO errors,
//! and **exits nonzero** if any seed failed to converge every tenant's
//! p95 to within tolerance of its target — this is the CI convergence
//! gate. `overload` runs the flash-crowd scenario with static shares and
//! with feedback side by side, and gates on feedback actually helping.

use alps_metrics::Summary;
use alps_sim::experiments::slo::{
    overload_params, run_overload, run_slo_sweep, SloParams, SloResult,
};

use super::table::Table;
use super::Scale;
use crate::output::{fmt, heading, write_data};

fn scaled_params(base: SloParams, scale: &Scale) -> SloParams {
    if scale.quick {
        base.quick()
    } else {
        base
    }
}

fn tenant_table(r: &SloResult) {
    let table = Table::new(&[-8, 9, 9, 8, 11, 8, 8, 8, 8]);
    table.header(&[
        "tenant", "target", "p95 ms", "err %", "share", "rps", "done", "dropped", "stretch",
    ]);
    for t in &r.tenants {
        table.row(&[
            t.name.clone(),
            fmt(t.target_p95_ms, 0),
            t.final_p95_ms.map_or("-".into(), |v| fmt(v, 0)),
            t.rel_error.map_or("-".into(), |e| fmt(e * 100.0, 1)),
            format!("{}->{}", t.initial_share, t.final_share),
            fmt(t.throughput_rps, 1),
            t.completed.to_string(),
            t.dropped.to_string(),
            fmt(t.mean_stretch, 1),
        ]);
    }
    println!(
        "  best-effort share {} (fixed); {} share adjustments; ALPS overhead {}%",
        r.hog_share,
        r.share_adjustments,
        fmt(r.overhead_pct, 2)
    );
}

/// The SLO-feedback scenario: converge each tenant's p95 to its target.
pub fn slo(scale: &Scale) {
    heading("extension: SLO-driven share feedback (open-loop overload)");
    let p = scaled_params(SloParams::default(), scale);
    println!(
        "{} tenants + best-effort hog, quantum {} ms, control period {} ms, {}s run ({}s settle)",
        p.tenants.len(),
        p.quantum.as_millis_f64(),
        p.control_period.as_millis_f64(),
        p.duration.as_secs_f64(),
        p.settle.as_secs_f64(),
    );
    let runs = run_slo_sweep(&p, &scale.seed_list());
    let mut rel_errors = Vec::new();
    let mut failures = 0usize;
    for (seed, r) in &runs {
        println!("\nseed {seed}:");
        tenant_table(r);
        for t in &r.tenants {
            if let Some(e) = t.rel_error {
                rel_errors.push(e * 100.0);
            }
        }
        if !r.converged {
            failures += 1;
            println!(
                "  NOT CONVERGED (tolerance {}%)",
                fmt(p.tolerance * 100.0, 0)
            );
        }
    }
    // Share trajectories of the first seed, for plotting.
    if let Some((_, first)) = runs.first() {
        let periods = first
            .tenants
            .iter()
            .map(|t| t.share_trajectory.len())
            .max()
            .unwrap_or(0);
        let rows: Vec<Vec<f64>> = (0..periods)
            .map(|k| {
                let mut row = vec![k as f64];
                for t in &first.tenants {
                    row.push(*t.share_trajectory.get(k).unwrap_or(&t.final_share) as f64);
                }
                row
            })
            .collect();
        write_data("slo_shares.dat", "period gold_share silver_share", &rows);
    }
    let s = Summary::from_samples(&rel_errors);
    println!(
        "\nrelative SLO error across {} tenant-seeds: mean {}% (stddev {}, range {}%..{}%)",
        s.count,
        fmt(s.mean, 1),
        fmt(s.stddev, 1),
        fmt(s.min, 1),
        fmt(s.max, 1)
    );
    if failures > 0 {
        eprintln!(
            "repro slo: {failures}/{} seed(s) failed to converge",
            runs.len()
        );
        std::process::exit(1);
    }
    println!(
        "all seeds converged within {}% of every tenant's target",
        fmt(p.tolerance * 100.0, 0)
    );
}

/// The flash-crowd comparison: static shares vs feedback.
pub fn overload(scale: &Scale) {
    heading("extension: flash-crowd overload — static shares vs SLO feedback");
    let p = scaled_params(overload_params(), scale);
    let r = run_overload(&p);
    println!("static shares (controller off):");
    tenant_table(&r.without);
    println!("\nSLO feedback on:");
    tenant_table(&r.with_controller);
    let gold_off = &r.without.tenants[0];
    let gold_on = &r.with_controller.tenants[0];
    let (p95_off, p95_on) = match (gold_off.final_p95_ms, gold_on.final_p95_ms) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            eprintln!("repro overload: gold tenant recorded no settle-window completions");
            std::process::exit(1);
        }
    };
    println!(
        "\ngold p95 under flash crowds: {} ms static vs {} ms with feedback (target {} ms)",
        fmt(p95_off, 0),
        fmt(p95_on, 0),
        fmt(gold_off.target_p95_ms, 0)
    );
    if r.without.share_adjustments != 0 {
        eprintln!("repro overload: controller-off run adjusted shares — determinism bug");
        std::process::exit(1);
    }
    if p95_on >= p95_off || r.with_controller.share_adjustments == 0 {
        eprintln!("repro overload: feedback failed to improve the violating tenant");
        std::process::exit(1);
    }
    println!("feedback cut the violator's tail while the static run shed its SLO");
}
