//! Aligned-column table printing shared by the command modules.

use crate::output::rule;

/// A fixed column layout: one signed width per column, where a positive
/// width right-aligns the cell and a negative width left-aligns it (the
/// usual split between numbers and labels). Columns are separated by a
/// single space.
pub(crate) struct Table {
    cols: Vec<(usize, bool)>,
}

impl Table {
    pub(crate) fn new(widths: &[i32]) -> Self {
        Table {
            cols: widths
                .iter()
                .map(|&w| (w.unsigned_abs() as usize, w < 0))
                .collect(),
        }
    }

    fn line(&self, cells: &[String]) {
        let mut out = String::new();
        for ((width, left), cell) in self.cols.iter().zip(cells) {
            if !out.is_empty() {
                out.push(' ');
            }
            if *left {
                out.push_str(&format!("{cell:<width$}"));
            } else {
                out.push_str(&format!("{cell:>width$}"));
            }
        }
        println!("{}", out.trim_end());
    }

    /// Total printed width (columns plus separators).
    pub(crate) fn width(&self) -> usize {
        self.cols.iter().map(|&(w, _)| w).sum::<usize>() + self.cols.len().saturating_sub(1)
    }

    /// Print the header row followed by a rule spanning the table.
    pub(crate) fn header(&self, cells: &[&str]) {
        self.line(&cells.iter().map(|s| s.to_string()).collect::<Vec<_>>());
        rule(self.width());
    }

    /// Print one data row.
    pub(crate) fn row(&self, cells: &[String]) {
        self.line(cells);
    }
}
