//! Minimal random-number generation for this workspace.
//!
//! `SmallRng` is a real xoshiro256** generator (the same family the
//! real `rand` crate uses for its small RNG), seeded via SplitMix64.
//! Only the API surface the workspace uses is provided: `seed_from_u64`
//! and `gen_range` over integer and float ranges.

use core::ops::{Range, RangeInclusive};

/// Seedable generator trait (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling trait (subset of `rand::Rng`).
pub trait Rng {
    /// The generator's native output: a uniformly distributed `u64`.
    fn next_u64(&mut self) -> u64;

    /// Sample uniformly from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Sample a uniformly distributed value of a supported type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled (subset of `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, lo: u64, hi_incl: u64) -> u64 {
    debug_assert!(lo <= hi_incl);
    let span = hi_incl.wrapping_sub(lo);
    if span == u64::MAX {
        return rng.next_u64();
    }
    let span = span + 1;
    // Rejection sampling to avoid modulo bias.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return lo + v % span;
        }
    }
}

fn uniform_f64<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    lo + unit * (hi - lo)
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                uniform_u64(rng, self.start as u64, self.end as u64 - 1) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start() <= self.end(), "empty range");
                uniform_u64(rng, *self.start() as u64, *self.end() as u64) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        uniform_f64(rng, self.start, self.end)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        uniform_f64(rng, *self.start(), *self.end())
    }
}

/// Small, fast RNGs.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256** generator.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 seed expansion, as the reference xoshiro code does.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..1000 {
            let v: u64 = a.gen_range(10..20u64);
            assert!((10..20).contains(&v));
            let f: f64 = a.gen_range(0.5..=1.5);
            assert!((0.5..=1.5).contains(&f));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "bucket count {c}");
        }
    }
}
