//! A mini property-testing runner with the `proptest` API surface this
//! workspace uses: the `proptest!` macro, `prop_assert*`/`prop_assume`,
//! integer/float range strategies, `any`, `collection::vec`,
//! `sample::select`, `Just`, `prop_oneof!`, and `prop_map`.
//!
//! Cases are generated from a deterministic per-case seed; there is no
//! shrinking — a failing case panics with the proptest-style message
//! (including the seed). `PROPTEST_CASES` overrides the configured case
//! count, and `cc <hex>` entries in a sibling `.proptest-regressions`
//! file are replayed before the random sweep (the 64-digit hex seed is
//! folded to this runner's u64 seed space).

use std::ops::{Range, RangeInclusive};

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case hit a `prop_assume!` that did not hold; try another.
    Reject(String),
    /// The property failed.
    Fail(String),
}

impl TestCaseError {
    /// Build a rejection (used by `prop_assume!`).
    pub fn reject(msg: impl std::fmt::Display) -> Self {
        TestCaseError::Reject(msg.to_string())
    }

    /// Build a failure (used by `prop_assert!`).
    pub fn fail(msg: impl std::fmt::Display) -> Self {
        TestCaseError::Fail(msg.to_string())
    }
}

/// Result type the body of a `proptest!` test expands into.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (subset of the real `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic per-case random source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeded constructor.
    pub fn new(seed: u64) -> Self {
        TestRng(seed.wrapping_add(0x9E3779B97F4A7C15))
    }

    /// Next uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn uniform(&mut self, lo: u64, hi_incl: u64) -> u64 {
        let span = hi_incl.wrapping_sub(lo);
        if span == u64::MAX {
            return self.next_u64();
        }
        let span = span + 1;
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return lo + v % span;
            }
        }
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discard values failing the predicate (re-drawn, bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Type-erase the strategy (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe sampling, for boxed strategies.
trait DynStrategy<V> {
    fn sample_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        self.0.sample_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?}: too many rejected draws", self.whence);
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!` support).
pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        assert!(!self.0.is_empty());
        let i = rng.uniform(0, self.0.len() as u64 - 1) as usize;
        self.0[i].sample(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.uniform(self.start as u64, self.end as u64 - 1) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.uniform(*self.start() as u64, *self.end() as u64) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

/// A parsed atom of the regex subset supported for string strategies.
enum ReAtom {
    Any,
    Class(Vec<(char, char)>),
    Lit(char),
}

/// String strategies from a regex subset: concatenations of `.`,
/// `[class]`, and literal characters, each optionally quantified with
/// `{n}` or `{lo,hi}`.
struct ReStrategy {
    atoms: Vec<(ReAtom, usize, usize)>,
}

fn parse_regex(pat: &str) -> ReStrategy {
    let chars: Vec<char> = pat.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                ReAtom::Any
            }
            '[' => {
                i += 1;
                let mut ranges = Vec::new();
                assert!(
                    chars.get(i) != Some(&'^'),
                    "proptest stub: negated classes unsupported"
                );
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&c| c != ']')
                    {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                assert!(chars.get(i) == Some(&']'), "unterminated char class");
                i += 1;
                ReAtom::Class(ranges)
            }
            '\\' => {
                i += 2;
                ReAtom::Lit(chars[i - 1])
            }
            c => {
                assert!(
                    !"{}()|*+?$^".contains(c),
                    "proptest stub: unsupported regex construct {c:?} in {pat:?}"
                );
                i += 1;
                ReAtom::Lit(c)
            }
        };
        let (lo, hi) = if chars.get(i) == Some(&'{') {
            let end = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated quantifier")
                + i;
            let body: String = chars[i + 1..end].iter().collect();
            i = end + 1;
            match body.split_once(',') {
                Some((a, b)) => (a.parse().unwrap(), b.parse().unwrap()),
                None => {
                    let n = body.parse().unwrap();
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push((atom, lo, hi));
    }
    ReStrategy { atoms }
}

impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let re = parse_regex(self);
        let mut out = String::new();
        for (atom, lo, hi) in &re.atoms {
            let n = rng.uniform(*lo as u64, *hi as u64) as usize;
            for _ in 0..n {
                match atom {
                    ReAtom::Lit(c) => out.push(*c),
                    ReAtom::Any => {
                        // Mostly printable ASCII, occasionally arbitrary
                        // unicode to stress parsers.
                        if rng.next_u64().is_multiple_of(8) {
                            let cp = rng.uniform(0, 0x10FFFF) as u32;
                            out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                        } else {
                            out.push((rng.uniform(32, 126) as u8) as char);
                        }
                    }
                    ReAtom::Class(ranges) => {
                        let r = ranges[rng.uniform(0, ranges.len() as u64 - 1) as usize];
                        out.push(
                            char::from_u32(rng.uniform(r.0 as u64, r.1 as u64) as u32)
                                .unwrap_or(r.0),
                        );
                    }
                }
            }
        }
        out
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// `any::<T>()` support.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy for an arbitrary value of `T`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An arbitrary value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Things usable as a collection-size specification.
    pub trait IntoSizeRange {
        /// Inclusive (lo, hi) bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end);
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for a `Vec` whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    /// A `Vec` of values from `element`, sized within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        VecStrategy { element, lo, hi }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.uniform(self.lo as u64, self.hi as u64) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::{Strategy, TestRng};

    /// Uniform choice from a fixed set.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    /// Choose uniformly from `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty());
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.uniform(0, self.0.len() as u64 - 1) as usize;
            self.0[i].clone()
        }
    }
}

/// The test-case driver behind the `proptest!` macro.
pub mod runner {
    use super::{ProptestConfig, TestCaseError, TestRng};
    use std::path::{Path, PathBuf};

    /// The case count actually in effect: `PROPTEST_CASES` overrides the
    /// per-suite configuration, so CI can run long soaks without touching
    /// source. Unparseable values fall back to the configured count.
    fn effective_cases(cfg: &ProptestConfig) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(cfg.cases)
    }

    /// Run `f` until the configured number of successful cases (or panic
    /// on failure).
    pub fn run<F: FnMut(&mut TestRng) -> Result<(), TestCaseError>>(
        cfg: &ProptestConfig,
        mut f: F,
    ) {
        let cases = effective_cases(cfg);
        let mut ok = 0u32;
        let mut rejects = 0u32;
        let max_rejects = cases.saturating_mul(16).max(1024);
        let mut case = 0u64;
        while ok < cases {
            let mut rng = TestRng::new(case);
            case += 1;
            match f(&mut rng) {
                Ok(()) => ok += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejects += 1;
                    if rejects > max_rejects {
                        panic!("proptest: too many prop_assume rejections");
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest case failed (case #{case}, seed {seed:#018x}): {msg}",
                        seed = case - 1
                    );
                }
            }
        }
    }

    /// Fold one `cc <hex>` token (real-proptest records a 256-bit seed as
    /// 64 hex digits) down to the u64 seed space this runner draws from:
    /// rotate-xor four bits at a time, so every digit contributes and a
    /// plain 16-digit seed folds to itself.
    fn fold_hex_seed(token: &str) -> Option<u64> {
        let mut acc = 0u64;
        let mut digits = 0u32;
        for c in token.chars() {
            let d = c.to_digit(16)?;
            acc = acc.rotate_left(4) ^ u64::from(d);
            digits += 1;
        }
        (digits > 0).then_some(acc)
    }

    /// Locate `<source minus .rs>.proptest-regressions`. `file!()` paths
    /// are workspace-relative while test binaries run from the package
    /// root, so try the path as given and every suffix of it against both
    /// the working directory and `CARGO_MANIFEST_DIR`.
    fn regression_file(source_file: &str) -> Option<PathBuf> {
        let base = source_file.strip_suffix(".rs").unwrap_or(source_file);
        let rel = PathBuf::from(format!("{base}.proptest-regressions"));
        if rel.is_file() {
            return Some(rel);
        }
        let manifest_dir = std::env::var("CARGO_MANIFEST_DIR").ok()?;
        let comps: Vec<_> = rel.components().collect();
        for skip in 0..comps.len() {
            let tail: PathBuf = comps[skip..].iter().collect();
            let cand = Path::new(&manifest_dir).join(tail);
            if cand.is_file() {
                return Some(cand);
            }
        }
        None
    }

    /// Seeds recorded for this suite, in file order. Lines other than
    /// `cc <hex> ...` (comments, blanks) are ignored, like real proptest.
    fn regression_seeds(source_file: &str) -> Vec<u64> {
        let Some(path) = regression_file(source_file) else {
            return Vec::new();
        };
        let Ok(contents) = std::fs::read_to_string(&path) else {
            return Vec::new();
        };
        contents
            .lines()
            .filter_map(|line| {
                let mut words = line.split_whitespace();
                (words.next() == Some("cc"))
                    .then(|| words.next())
                    .flatten()
                    .and_then(fold_hex_seed)
            })
            .collect()
    }

    /// Like [`run`], but first replays every seed recorded in the suite's
    /// `.proptest-regressions` file (located from `source_file`, normally
    /// `file!()`). Replayed rejections are skipped; failures panic with
    /// the offending seed so the record stays actionable.
    pub fn run_with_source<F: FnMut(&mut TestRng) -> Result<(), TestCaseError>>(
        cfg: &ProptestConfig,
        source_file: &str,
        mut f: F,
    ) {
        for seed in regression_seeds(source_file) {
            let mut rng = TestRng::new(seed);
            if let Err(TestCaseError::Fail(msg)) = f(&mut rng) {
                panic!("proptest regression failed (seed {seed:#018x}): {msg}");
            }
        }
        run(cfg, f);
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn plain_seed_folds_to_itself() {
            assert_eq!(super::fold_hex_seed("00000000deadbeef"), Some(0xdeadbeef));
        }

        #[test]
        fn non_hex_is_rejected() {
            assert_eq!(super::fold_hex_seed("shrinks"), None);
            assert_eq!(super::fold_hex_seed(""), None);
        }

        #[test]
        fn full_width_token_folds_every_digit() {
            let a = super::fold_hex_seed(&"ab".repeat(32)).unwrap();
            let b = super::fold_hex_seed(&format!("{}{}", "ab".repeat(31), "ac")).unwrap();
            assert_ne!(a, b);
        }
    }
}

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };

    /// The `prop` module alias (`prop::sample::select`, …).
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

/// Assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

/// Skip the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice among heterogeneous strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Define property tests (subset of the real `proptest!` syntax).
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( @cfg ($cfg:expr) ) => {};
    ( @cfg ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __cfg = $cfg;
            $crate::runner::run_with_source(&__cfg, file!(), |__rng| {
                $(let $pat = $crate::Strategy::sample(&$strat, __rng);)+
                let __out: $crate::TestCaseResult = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })();
                __out
            });
        }
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
}
