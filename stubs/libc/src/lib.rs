//! Minimal libc bindings for the symbols this workspace uses.
//!
//! These are real FFI declarations against the system C library — not
//! mocks. Only Linux is supported, matching the alps-os backend.

#![allow(non_camel_case_types)]
#![allow(non_upper_case_globals)] // SYS_* constants match the real libc crate's names

pub type c_int = i32;
pub type c_long = i64;
pub type c_uint = u32;
pub type time_t = i64;
pub type pid_t = i32;
pub type uid_t = u32;
pub type clockid_t = i32;
pub type sighandler_t = usize;

/// `struct timespec` as defined on 64-bit Linux.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct timespec {
    pub tv_sec: time_t,
    pub tv_nsec: c_long,
}

pub const SIGINT: c_int = 2;
pub const SIGKILL: c_int = 9;
pub const SIGTERM: c_int = 15;
pub const SIGSTOP: c_int = 19;
pub const SIGCONT: c_int = 18;

pub const EINTR: c_int = 4;
pub const ESRCH: c_int = 3;
pub const ENOENT: c_int = 2;
pub const EACCES: c_int = 13;
pub const EROFS: c_int = 30;
pub const ENOSYS: c_int = 38;

pub const CLOCK_MONOTONIC: clockid_t = 1;
pub const TIMER_ABSTIME: c_int = 1;

pub const _SC_CLK_TCK: c_int = 2;

pub const SIG_DFL: sighandler_t = 0;
pub const SIG_IGN: sighandler_t = 1;
pub const SIG_ERR: sighandler_t = !0;

/// `pidfd_open(2)` syscall number (uniform across Linux architectures;
/// new syscalls share numbers since 5.1).
pub const SYS_pidfd_open: c_long = 434;

pub const EPOLL_CLOEXEC: c_int = 0o2000000;
pub const EPOLL_CTL_ADD: c_int = 1;
pub const EPOLL_CTL_DEL: c_int = 2;
pub const EPOLLIN: u32 = 0x001;

/// `struct epoll_event`. Packed on x86-64 (the kernel ABI packs it there
/// so 32-bit and 64-bit layouts match); natural alignment elsewhere.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Debug, Clone, Copy)]
pub struct epoll_event {
    pub events: u32,
    pub u64: u64,
}

extern "C" {
    pub fn kill(pid: pid_t, sig: c_int) -> c_int;
    pub fn getuid() -> uid_t;
    pub fn sysconf(name: c_int) -> c_long;
    pub fn signal(signum: c_int, handler: sighandler_t) -> sighandler_t;
    pub fn clock_gettime(clk_id: clockid_t, tp: *mut timespec) -> c_int;
    pub fn clock_nanosleep(
        clk_id: clockid_t,
        flags: c_int,
        request: *const timespec,
        remain: *mut timespec,
    ) -> c_int;
    pub fn syscall(num: c_long, ...) -> c_long;
    pub fn close(fd: c_int) -> c_int;
    pub fn epoll_create1(flags: c_int) -> c_int;
    pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
    pub fn epoll_wait(
        epfd: c_int,
        events: *mut epoll_event,
        maxevents: c_int,
        timeout: c_int,
    ) -> c_int;
}
