//! Minimal libc bindings for the symbols this workspace uses.
//!
//! These are real FFI declarations against the system C library — not
//! mocks. Only Linux is supported, matching the alps-os backend.

#![allow(non_camel_case_types)]

pub type c_int = i32;
pub type c_long = i64;
pub type c_uint = u32;
pub type time_t = i64;
pub type pid_t = i32;
pub type uid_t = u32;
pub type clockid_t = i32;
pub type sighandler_t = usize;

/// `struct timespec` as defined on 64-bit Linux.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct timespec {
    pub tv_sec: time_t,
    pub tv_nsec: c_long,
}

pub const SIGINT: c_int = 2;
pub const SIGKILL: c_int = 9;
pub const SIGTERM: c_int = 15;
pub const SIGSTOP: c_int = 19;
pub const SIGCONT: c_int = 18;

pub const EINTR: c_int = 4;
pub const ESRCH: c_int = 3;

pub const CLOCK_MONOTONIC: clockid_t = 1;
pub const TIMER_ABSTIME: c_int = 1;

pub const _SC_CLK_TCK: c_int = 2;

pub const SIG_DFL: sighandler_t = 0;
pub const SIG_IGN: sighandler_t = 1;
pub const SIG_ERR: sighandler_t = !0;

extern "C" {
    pub fn kill(pid: pid_t, sig: c_int) -> c_int;
    pub fn getuid() -> uid_t;
    pub fn sysconf(name: c_int) -> c_long;
    pub fn signal(signum: c_int, handler: sighandler_t) -> sighandler_t;
    pub fn clock_gettime(clk_id: clockid_t, tp: *mut timespec) -> c_int;
    pub fn clock_nanosleep(
        clk_id: clockid_t,
        flags: c_int,
        request: *const timespec,
        remain: *mut timespec,
    ) -> c_int;
}
