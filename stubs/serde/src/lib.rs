//! Minimal serialization framework for this workspace.
//!
//! Instead of the real serde's visitor-based data model, values are
//! serialized through an in-memory [`Value`] tree; `serde_json` (also
//! in-tree) renders that tree to JSON text and parses it back. The
//! `Serialize`/`Deserialize` derive macros come from the sibling
//! `serde_derive` stub and support `#[serde(skip)]` and
//! `#[serde(transparent)]` — the only attributes this workspace uses.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unit / null.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Key-value map (insertion order preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Look up a key in serialized map entries (helper for derived code).
pub fn map_get<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// A deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Build an error from a message.
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be rendered to a [`Value`].
pub trait Serialize {
    /// Serialize `self` into the value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Deserialize from the value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Owned-deserialization marker, mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

/// `serde::de` module shim so `serde::de::Error`-style paths resolve.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned, Error};
}

/// `serde::ser` module shim.
pub mod ser {
    pub use crate::{Error, Serialize};
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::U64(n) => <$t>::try_from(n).map_err(Error::custom),
                    Value::I64(n) => <$t>::try_from(n).map_err(Error::custom),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::U64(n) => <$t>::try_from(n).map_err(Error::custom),
                    Value::I64(n) => <$t>::try_from(n).map_err(Error::custom),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

ser_uint!(u8, u16, u32, u64, usize);
ser_int!(i8, i16, i32, i64, isize);

macro_rules! ser_nonzero {
    ($($nz:ty => $t:ty),*) => {$(
        impl Serialize for $nz {
            fn to_value(&self) -> Value { Value::U64(self.get() as u64) }
        }
        impl Deserialize for $nz {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = <$t>::from_value(v)?;
                <$nz>::new(n).ok_or_else(|| Error::custom("expected nonzero integer"))
            }
        }
    )*};
}

ser_nonzero!(
    std::num::NonZeroU32 => u32,
    std::num::NonZeroU64 => u64,
    std::num::NonZeroUsize => usize
);

macro_rules! ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::F64(x) => Ok(x as $t),
                    Value::U64(n) => Ok(n as $t),
                    Value::I64(n) => Ok(n as $t),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

ser_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::custom("expected char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(_: &Value) -> Result<Self, Error> {
        Ok(())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom("expected sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Deserialize::from_value(v)?;
        <[T; N]>::try_from(items).map_err(|_| Error::custom("wrong array length"))
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let s = v.as_seq().ok_or_else(|| Error::custom("expected tuple"))?;
                let mut it = s.iter();
                #[allow(unused_mut)]
                let mut next = move || it.next().ok_or_else(|| Error::custom("tuple too short"));
                Ok(($($t::from_value(next()?)?,)+))
            }
        }
    )*};
}

ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_seq().ok_or_else(|| Error::custom("expected map"))?;
        s.iter()
            .map(|pair| {
                let p = pair
                    .as_seq()
                    .ok_or_else(|| Error::custom("expected pair"))?;
                if p.len() != 2 {
                    return Err(Error::custom("expected pair"));
                }
                Ok((K::from_value(&p[0])?, V::from_value(&p[1])?))
            })
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Deserialize::from_value(v)?;
        Ok(items.into())
    }
}
