//! JSON rendering/parsing over the in-tree `serde::Value` tree.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// A serialization or parse error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serialize `value` as a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Deserialize `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters"));
    }
    Ok(T::from_value(&v)?)
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{}` on f64 is the shortest representation that
                // round-trips, and prints integral values without a dot;
                // the parser's numeric coercion handles that case.
                out.push_str(&x.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, Error> {
        let b = self.peek().ok_or_else(|| Error::new("unexpected eof"))?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.bump()?;
        if got != b {
            return Err(Error::new(format!(
                "expected {:?}, got {:?}",
                b as char, got as char
            )));
        }
        Ok(())
    }

    fn literal(&mut self, word: &str) -> Result<(), Error> {
        for &b in word.as_bytes() {
            self.expect(b)?;
        }
        Ok(())
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek().ok_or_else(|| Error::new("unexpected eof"))? {
            b'n' => {
                self.literal("null")?;
                Ok(Value::Null)
            }
            b't' => {
                self.literal("true")?;
                Ok(Value::Bool(true))
            }
            b'f' => {
                self.literal("false")?;
                Ok(Value::Bool(false))
            }
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.bump()? {
                        b',' => continue,
                        b']' => return Ok(Value::Seq(items)),
                        other => {
                            return Err(Error::new(format!(
                                "expected ',' or ']', got {:?}",
                                other as char
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    entries.push((key, self.value()?));
                    self.skip_ws();
                    match self.bump()? {
                        b',' => continue,
                        b'}' => return Ok(Value::Map(entries)),
                        other => {
                            return Err(Error::new(format!(
                                "expected ',' or '}}', got {:?}",
                                other as char
                            )))
                        }
                    }
                }
            }
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.bump()?;
            match b {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let h = self.bump()?;
                            code = code * 16
                                + (h as char)
                                    .to_digit(16)
                                    .ok_or_else(|| Error::new("bad \\u escape"))?;
                        }
                        out.push(char::from_u32(code).ok_or_else(|| Error::new("bad codepoint"))?);
                    }
                    other => return Err(Error::new(format!("bad escape {:?}", other as char))),
                },
                _ => {
                    // Re-decode UTF-8 starting at this byte.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::new("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::new("invalid number"));
        }
        if float {
            text.parse::<f64>().map(Value::F64).map_err(Error::new)
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .map_err(Error::new)
                .map(|n| Value::I64(-(n as i64)))
        } else {
            text.parse::<u64>().map(Value::U64).map_err(Error::new)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_values() {
        let v = Value::Map(vec![
            ("a".into(), Value::U64(7)),
            ("b".into(), Value::Seq(vec![Value::F64(1.5), Value::Null])),
            ("c".into(), Value::Str("hi \"there\"\n".into())),
            ("d".into(), Value::Bool(true)),
            ("e".into(), Value::I64(-3)),
        ]);
        let mut s = String::new();
        write_value(&v, &mut s);
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        let back = p.value().unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn integral_floats_coerce() {
        // 3.0f64 prints as "3"; deserializing into f64 must accept U64.
        let s = to_string(&3.0f64).unwrap();
        assert_eq!(s, "3");
        let x: f64 = from_str(&s).unwrap();
        assert_eq!(x, 3.0);
    }
}
