//! A small, functional benchmark harness with the `criterion` API
//! surface this workspace uses. Timings are wall-clock medians over a
//! fixed number of samples — adequate for relative comparisons, with
//! none of the real criterion's statistics.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A function/parameter benchmark id.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{function}/{parameter}"),
        }
    }

    /// A parameter-only benchmark id.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Throughput annotation (recorded, reported per element).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    samples: usize,
    result: Option<Duration>,
}

impl Bencher {
    /// Time `f`, calling it repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up plus calibration: find an iteration count that takes
        // roughly a millisecond, then sample.
        let mut iters = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let el = t.elapsed();
            if el >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        let mut best = Duration::MAX;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let el = t.elapsed() / iters as u32;
            if el < best {
                best = el;
            }
        }
        self.result = Some(best);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the number of samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.c.samples = n.clamp(2, 1000);
        self
    }

    /// Accepted for API compatibility; the mini harness ignores it.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: self.c.samples,
            result: None,
        };
        f(&mut b);
        self.report(&id.name, b.result);
        self
    }

    /// Run one benchmark with an input parameter.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: self.c.samples,
            result: None,
        };
        f(&mut b, input);
        self.report(&id.name, b.result);
        self
    }

    fn report(&self, name: &str, result: Option<Duration>) {
        match result {
            Some(d) => {
                let per_elem = match self.throughput {
                    Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) if n > 0 => {
                        format!("  ({:?}/elem)", d / n as u32)
                    }
                    _ => String::new(),
                };
                println!("{}/{name}: {d:?}{per_elem}", self.name);
            }
            None => println!("{}/{name}: no measurement", self.name),
        }
    }

    /// Finish the group.
    pub fn finish(&mut self) {}
}

/// Benchmark driver.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 10 }
    }
}

impl Criterion {
    /// Override the number of samples per benchmark (builder form, as on
    /// the real criterion's config).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.samples = n.clamp(2, 1000);
        self
    }

    /// Accepted for API compatibility; the mini harness ignores it.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API compatibility; the mini harness ignores it.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Start a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            c: self,
            throughput: None,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.samples,
            result: None,
        };
        f(&mut b);
        match b.result {
            Some(d) => println!("{name}: {d:?}"),
            None => println!("{name}: no measurement"),
        }
        self
    }
}

/// Collect benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
