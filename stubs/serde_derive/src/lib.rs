//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the in-tree
//! serde substitute.
//!
//! Parses the derive input with hand-rolled token walking (no `syn`) and
//! emits `to_value`/`from_value` impls against `serde::Value`. Supports
//! the shapes this workspace uses: named structs, tuple structs, unit
//! structs, and enums with unit / tuple / struct variants; the
//! `#[serde(skip)]`, `#[serde(default)]` (on named fields), and
//! `#[serde(transparent)]` attributes; no generics.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().unwrap()
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().unwrap()
}

struct Field {
    name: String, // field name, or index for tuple fields
    skip: bool,
    // `#[serde(default)]`: a missing key deserializes to
    // `Default::default()` instead of erroring (named fields only).
    default: bool,
}

enum Shape {
    Unit,
    Named(Vec<Field>),
    Tuple(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Body {
    Struct(Shape),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    transparent: bool,
    body: Body,
}

/// Serde attribute words found while skipping `#[...]` attributes.
fn take_attrs(toks: &[TokenTree], i: &mut usize) -> Vec<String> {
    let mut words = Vec::new();
    while *i + 1 < toks.len() {
        match (&toks[*i], &toks[*i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let Some(TokenTree::Ident(id)) = inner.first() {
                    if id.to_string() == "serde" {
                        if let Some(TokenTree::Group(args)) = inner.get(1) {
                            for t in args.stream() {
                                if let TokenTree::Ident(w) = t {
                                    words.push(w.to_string());
                                }
                            }
                        }
                    }
                }
                *i += 2;
            }
            _ => break,
        }
    }
    words
}

fn skip_visibility(toks: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = toks.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Split a token list on commas that sit outside `<...>` nesting.
fn split_top(toks: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle = 0i32;
    for t in toks {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_named_fields(g: &proc_macro::Group) -> Vec<Field> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    split_top(&toks)
        .iter()
        .map(|chunk| {
            let mut i = 0;
            let attrs = take_attrs(chunk, &mut i);
            skip_visibility(chunk, &mut i);
            let name = match &chunk[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("serde_derive: expected field name, got {other}"),
            };
            Field {
                name,
                skip: attrs.iter().any(|w| w == "skip"),
                default: attrs.iter().any(|w| w == "default"),
            }
        })
        .collect()
}

fn parse_tuple_fields(g: &proc_macro::Group) -> Vec<Field> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    split_top(&toks)
        .iter()
        .enumerate()
        .map(|(idx, chunk)| {
            let mut i = 0;
            let attrs = take_attrs(chunk, &mut i);
            Field {
                name: idx.to_string(),
                skip: attrs.iter().any(|w| w == "skip"),
                default: attrs.iter().any(|w| w == "default"),
            }
        })
        .collect()
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let attrs = take_attrs(&toks, &mut i);
    let transparent = attrs.iter().any(|w| w == "transparent");
    skip_visibility(&toks, &mut i);
    let kind = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, got {other}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive: generic types are not supported by the in-tree stub");
        }
    }
    let body = match kind.as_str() {
        "struct" => Body::Struct(match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(parse_tuple_fields(g))
            }
            _ => Shape::Unit,
        }),
        "enum" => {
            let g = match &toks[i] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => g,
                other => panic!("serde_derive: expected enum body, got {other}"),
            };
            let vtoks: Vec<TokenTree> = g.stream().into_iter().collect();
            let variants = split_top(&vtoks)
                .iter()
                .map(|chunk| {
                    let mut j = 0;
                    take_attrs(chunk, &mut j);
                    let vname = match &chunk[j] {
                        TokenTree::Ident(id) => id.to_string(),
                        other => panic!("serde_derive: expected variant name, got {other}"),
                    };
                    j += 1;
                    let shape = match chunk.get(j) {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            Shape::Named(parse_named_fields(g))
                        }
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                            Shape::Tuple(parse_tuple_fields(g))
                        }
                        _ => Shape::Unit,
                    };
                    Variant { name: vname, shape }
                })
                .collect();
            Body::Enum(variants)
        }
        other => panic!("serde_derive: cannot derive for {other}"),
    };
    Item {
        name,
        transparent,
        body,
    }
}

fn ser_named(fields: &[Field], access: &str) -> String {
    let mut s = String::from("{ let mut __m: Vec<(String, ::serde::Value)> = Vec::new();");
    for f in fields.iter().filter(|f| !f.skip) {
        s.push_str(&format!(
            "__m.push((String::from(\"{n}\"), ::serde::Serialize::to_value({access}{n})));",
            n = f.name,
        ));
    }
    s.push_str("::serde::Value::Map(__m) }");
    s
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(Shape::Unit) => "::serde::Value::Null".to_string(),
        Body::Struct(Shape::Named(fields)) => ser_named(fields, "&self."),
        Body::Struct(Shape::Tuple(fields)) => {
            let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            if item.transparent && live.len() == 1 {
                format!("::serde::Serialize::to_value(&self.{})", live[0].name)
            } else {
                let elems: Vec<String> = live
                    .iter()
                    .map(|f| format!("::serde::Serialize::to_value(&self.{})", f.name))
                    .collect();
                format!("::serde::Value::Seq(vec![{}])", elems.join(", "))
            }
        }
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(String::from(\"{vn}\")),"
                        ),
                        Shape::Tuple(fields) => {
                            let binds: Vec<String> =
                                (0..fields.len()).map(|k| format!("__f{k}")).collect();
                            let payload = if fields.len() == 1 {
                                "::serde::Serialize::to_value(__f0)".to_string()
                            } else {
                                let elems: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Seq(vec![{}])", elems.join(", "))
                            };
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Map(vec![(String::from(\"{vn}\"), {payload})]),",
                                binds = binds.join(", "),
                            )
                        }
                        Shape::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let payload = ser_named(
                                &fields
                                    .iter()
                                    .map(|f| Field {
                                        name: f.name.clone(),
                                        skip: f.skip,
                                        default: f.default,
                                    })
                                    .collect::<Vec<_>>(),
                                "",
                            );
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![(String::from(\"{vn}\"), {payload})]),",
                                binds = binds.join(", "),
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

fn de_named(ty: &str, fields: &[Field], ctor: &str) -> String {
    let mut s = format!(
        "{{ let __m = __v.as_map().ok_or_else(|| ::serde::Error::custom(\"{ty}: expected map\"))?; Ok({ctor} {{"
    );
    for f in fields {
        if f.skip {
            s.push_str(&format!("{}: ::core::default::Default::default(),", f.name));
        } else if f.default {
            s.push_str(&format!(
                "{n}: match ::serde::map_get(__m, \"{n}\") {{ \
                   Some(__x) => ::serde::Deserialize::from_value(__x)?, \
                   None => ::core::default::Default::default(), \
                 }},",
                n = f.name,
            ));
        } else {
            s.push_str(&format!(
                "{n}: match ::serde::map_get(__m, \"{n}\") {{ \
                   Some(__x) => ::serde::Deserialize::from_value(__x)?, \
                   None => return Err(::serde::Error::custom(\"{ty}: missing field {n}\")), \
                 }},",
                n = f.name,
            ));
        }
    }
    s.push_str("}) }");
    s
}

fn de_tuple_payload(ty: &str, ctor: &str, n: usize) -> String {
    if n == 1 {
        return format!("Ok({ctor}(::serde::Deserialize::from_value(__v)?))");
    }
    let mut s = format!(
        "{{ let __s = __v.as_seq().ok_or_else(|| ::serde::Error::custom(\"{ty}: expected seq\"))?; \
         if __s.len() != {n} {{ return Err(::serde::Error::custom(\"{ty}: wrong length\")); }} Ok({ctor}("
    );
    for k in 0..n {
        s.push_str(&format!("::serde::Deserialize::from_value(&__s[{k}])?,"));
    }
    s.push_str(")) }");
    s
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(Shape::Unit) => format!("Ok({name})"),
        Body::Struct(Shape::Named(fields)) => de_named(name, fields, name),
        Body::Struct(Shape::Tuple(fields)) => {
            let live = fields.iter().filter(|f| !f.skip).count();
            assert!(
                live == fields.len(),
                "serde_derive: skip in tuple structs is not supported"
            );
            de_tuple_payload(name, name, fields.len())
        }
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),"));
                    }
                    Shape::Tuple(fields) => {
                        let inner = de_tuple_payload(
                            &format!("{name}::{vn}"),
                            &format!("{name}::{vn}"),
                            fields.len(),
                        );
                        data_arms
                            .push_str(&format!("\"{vn}\" => {{ let __v = __payload; {inner} }},"));
                    }
                    Shape::Named(fields) => {
                        let inner =
                            de_named(&format!("{name}::{vn}"), fields, &format!("{name}::{vn}"));
                        data_arms
                            .push_str(&format!("\"{vn}\" => {{ let __v = __payload; {inner} }},"));
                    }
                }
            }
            format!(
                "match __v {{ \
                   ::serde::Value::Str(__s) => match __s.as_str() {{ \
                     {unit_arms} \
                     __other => Err(::serde::Error::custom(format!(\"{name}: unknown variant {{__other}}\"))), \
                   }}, \
                   ::serde::Value::Map(__entries) if __entries.len() == 1 => {{ \
                     let (__tag, __payload) = &__entries[0]; \
                     match __tag.as_str() {{ \
                       {data_arms} \
                       __other => Err(::serde::Error::custom(format!(\"{name}: unknown variant {{__other}}\"))), \
                     }} \
                   }}, \
                   _ => Err(::serde::Error::custom(\"{name}: expected variant\")), \
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ \
           fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::Error> {{ {body} }} \
         }}"
    )
}
