# Render the reproduced figures from the .dat files in this directory.
#
#   gnuplot -c plot.gp        # writes fig4.png ... fig9.png, latency.png
#
# Regenerate the data with:
#   cargo run --release -p repro -- --data data all

set terminal pngcairo size 900,600
set key left top
set grid

set output "fig4.png"
set title "Figure 4: accuracy vs quantum length"
set xlabel "Quantum Length (ms)"
set ylabel "Mean RMS Relative Error (%)"
plot for [w in "skewed5 skewed10 skewed20 linear5 linear10 linear20 equal5 equal10 equal20"] \
    sprintf("fig4_%s.dat", w) using 1:2 with linespoints title w

set output "fig5.png"
set title "Figure 5: ALPS overhead vs number of processes"
set xlabel "Number of Processes (N)"
set ylabel "Overhead (%)"
plot for [m in "skewed linear equal"] \
    sprintf("fig5_%s.dat", m) using 1:2 with linespoints title sprintf("%s, 10ms", m), \
    for [m in "skewed linear equal"] \
    sprintf("fig5_%s.dat", m) using 1:3 with linespoints title sprintf("%s, 20ms", m), \
    for [m in "skewed linear equal"] \
    sprintf("fig5_%s.dat", m) using 1:4 with linespoints title sprintf("%s, 40ms", m)

set output "fig6.png"
set title "Figure 6: share per cycle while the 2-share process does I/O"
set xlabel "Cycle Number"
set ylabel "Share (%)"
set xrange [560:650]
plot "fig6_a.dat" using 1:2 with linespoints title "1 share", \
     "fig6_b.dat" using 1:2 with linespoints title "2 shares, I/O", \
     "fig6_c.dat" using 1:2 with linespoints title "3 shares"
unset xrange

set output "fig7.png"
set title "Figure 7: cumulative CPU, three concurrent ALPSs"
set xlabel "Time (ms)"
set ylabel "Cumulative CPU Consumption (ms)"
plot for [s=1:3] sprintf("fig7_%dshare_c.dat", s) using 1:2 with lines \
        title sprintf("%d shares (ALPS C)", s), \
     for [s=4:6] sprintf("fig7_%dshare_b.dat", s) using 1:2 with lines \
        title sprintf("%d shares (ALPS B)", s), \
     for [s=7:9] sprintf("fig7_%dshare_a.dat", s) using 1:2 with lines \
        title sprintf("%d shares (ALPS A)", s)

set output "fig8.png"
set title "Figure 8: overhead, equal-share workload"
set xlabel "Number of Processes (N)"
set ylabel "Overhead (%)"
plot "fig8_9_q10ms.dat" using 1:2 with linespoints title "10 ms quantum", \
     "fig8_9_q20ms.dat" using 1:2 with linespoints title "20 ms quantum", \
     "fig8_9_q40ms.dat" using 1:2 with linespoints title "40 ms quantum"

set output "fig9.png"
set title "Figure 9: accuracy, equal-share workload"
set xlabel "Number of Processes (N)"
set ylabel "Mean RMS Relative Error (%)"
plot "fig8_9_q10ms.dat" using 1:3 with linespoints title "10 ms quantum", \
     "fig8_9_q20ms.dat" using 1:3 with linespoints title "20 ms quantum", \
     "fig8_9_q40ms.dat" using 1:3 with linespoints title "40 ms quantum"

set output "latency.png"
set title "Extension: quantum length vs request latency (web workload)"
set xlabel "ALPS quantum (ms)"
set ylabel "Latency (ms)"
set logscale x
plot "latency_sweep.dat" using 1:2 with linespoints title "throttled site p50", \
     "latency_sweep.dat" using 1:3 with linespoints title "throttled site p95", \
     "latency_sweep.dat" using 1:5 with linespoints title "favored site p95"
