//! The §4.1 multiple-applications scenario: three independent ALPS
//! instances, phased in at 0 s / 3 s / 6 s, each apportioning whatever CPU
//! the kernel gives its group (Figure 7 / Table 3 of the paper).
//!
//! Run with: `cargo run --release --example multi_alps`

use alps_sim::experiments::multi::{run_multi, MultiParams};

fn main() {
    let params = MultiParams::default();
    println!("group A (shares 7,8,9) at t=0; B (4,5,6) at t=3s; C (1,2,3) at t=6s");
    println!("running to t=15s...\n");
    let r = run_multi(&params);

    println!("cumulative CPU at the end of each process's run:");
    for s in &r.series {
        if let Some(&(t, c)) = s.points.last() {
            println!("  {:<22} {c:>8.0} ms CPU by t={t:>8.0} ms", s.label);
        }
    }

    println!("\nper-phase share of the group's CPU (Table 3):");
    println!(
        "{:>2} {:>7} {:>13} {:>13} {:>13}",
        "S", "target%", "phase 1", "phase 2", "phase 3"
    );
    for row in &r.table3 {
        let cell = |c: Option<(f64, f64)>| match c {
            Some((pct, re)) => format!("{pct:5.1} ({re:3.1}%)"),
            None => "      -     ".to_string(),
        };
        println!(
            "{:>2} {:>7.1} {:>13} {:>13} {:>13}",
            row.share,
            row.target_pct,
            cell(row.phases[0]),
            cell(row.phases[1]),
            cell(row.phases[2])
        );
    }
    println!(
        "\nmean relative error {:.2}% (paper: 0.93%); phase-3 group split {:.2}/{:.2}/{:.2}",
        r.mean_rel_err_pct,
        r.phase3_group_fractions[0],
        r.phase3_group_fractions[1],
        r.phase3_group_fractions[2]
    );
}
