//! Quickstart: proportional-share scheduling of real processes.
//!
//! Spawns three compute-bound children, gives them shares 1:2:3, and runs
//! an ALPS supervisor over them for a few seconds — the minimal version of
//! what the paper's ALPS process does. Prints the per-child CPU time and
//! the achieved ratios.
//!
//! Run with: `cargo run --release --example quickstart`

use std::time::Duration;

use alps::{AlpsConfig, Nanos, SpinnerPool, Supervisor};

fn cpu_of(pid: i32) -> Nanos {
    alps::os::read_stat(pid, alps::os::proc::ns_per_tick())
        .map(|s| s.cpu_time)
        .unwrap_or(Nanos::ZERO)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shares = [1u64, 2, 3];
    let seconds = 6;

    println!("spawning {} compute-bound children...", shares.len());
    let pool = SpinnerPool::spawn(shares.len())?;
    let pids = pool.pids();

    // 20 ms quantum: a good accuracy/overhead balance per the paper's §3.
    let cfg = AlpsConfig::new(Nanos::from_millis(20)).with_cycle_log(true);
    let mut sup = Supervisor::new(cfg);
    for (&pid, &share) in pids.iter().zip(&shares) {
        sup.add_process(pid, share)?;
        println!("  pid {pid} -> {share} share(s)");
    }

    println!("supervising for {seconds} s at a 20 ms quantum...");
    let before: Vec<Nanos> = pids.iter().map(|&p| cpu_of(p)).collect();
    sup.run_for(Duration::from_secs(seconds))?;
    sup.release_all();
    let after: Vec<Nanos> = pids.iter().map(|&p| cpu_of(p)).collect();

    println!("\nresults:");
    let consumed: Vec<f64> = before
        .iter()
        .zip(&after)
        .map(|(b, a)| a.saturating_sub(*b).as_secs_f64())
        .collect();
    let unit = consumed[0].max(1e-9);
    let total: f64 = consumed.iter().sum();
    for ((pid, share), c) in pids.iter().zip(&shares).zip(&consumed) {
        println!(
            "  pid {pid}: {c:.2}s CPU  (share {share}, achieved ratio {:.2}, target {share})",
            c / unit
        );
    }
    println!(
        "  total workload CPU: {total:.2}s over {seconds}s wall; \
         {} cycles completed; {} quanta serviced",
        sup.cycles_completed(),
        sup.stats().quanta
    );
    Ok(())
}
