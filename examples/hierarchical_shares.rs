//! Hierarchical share trees flattened onto ALPS (simulator).
//!
//! Two departments split the machine 2:1; engineering has three users with
//! weights 1:1:2, research has two equal users. The tree flattens to the
//! per-process integer shares one ALPS instance enforces — and when a user
//! leaves, re-flattening redistributes their entitlement *within their
//! department*, exactly as a hierarchical scheduler would.
//!
//! Run with: `cargo run --release --example hierarchical_shares`

use alps::{AlpsConfig, CostModel, Nanos, ShareTree};
use kernsim::{ComputeBound, Sim, SimConfig};

fn main() {
    // Build the tree. Leaf tags index into our pid table.
    let mut tree = ShareTree::new();
    let eng = tree.add_group(None, 2);
    let res = tree.add_group(None, 1);
    let users = [
        ("eng/ana", eng, 1u64),
        ("eng/bo", eng, 1),
        ("eng/cy", eng, 2),
        ("res/dee", res, 1),
        ("res/eli", res, 1),
    ];
    let mut sim = Sim::new(SimConfig::default());
    let mut pids = Vec::new();
    let mut leaf_ids = Vec::new();
    for (i, &(name, group, weight)) in users.iter().enumerate() {
        pids.push(sim.spawn(name, Box::new(ComputeBound)));
        leaf_ids.push(tree.add_leaf(Some(group), weight, i as u64));
    }

    let flat = tree.flatten();
    println!("tree: departments eng:res = 2:1; eng users 1:1:2; res users 1:1");
    println!("flattened integer shares:");
    let procs: Vec<(kernsim::Pid, u64)> = flat
        .iter()
        .map(|&(tag, share)| {
            println!("  {:<8} -> {share}", users[tag as usize].0);
            (pids[tag as usize], share)
        })
        .collect();

    let alps = alps::spawn_alps(
        &mut sim,
        "alps",
        AlpsConfig::new(Nanos::from_millis(10)),
        CostModel::paper(),
        &procs,
    );
    sim.run_until(Nanos::from_secs(30));

    println!("\nafter 30s:");
    let total: f64 = pids
        .iter()
        .map(|&p| sim.proc(p).unwrap().cputime().as_secs_f64())
        .sum();
    for (&(name, _, _), &pid) in users.iter().zip(&pids) {
        let c = sim.proc(pid).unwrap().cputime().as_secs_f64();
        println!("  {name:<8} {c:>6.2}s = {:>5.1}%", 100.0 * c / total);
    }
    println!("  (targets: eng 16.7/16.7/33.3, res 16.7/16.7)");

    // eng/cy's processes leave; re-flatten: their 2 weights go back to the
    // engineering pool, not to research.
    println!("\neng/cy departs; re-flattening within engineering...");
    tree.remove_leaf(leaf_ids[2]);
    let ids = alps.proc_ids();
    for &(tag, share) in &tree.flatten() {
        // Map tags to still-registered core ids (same registration order as
        // `procs`, which follows `flat`).
        let pos = flat
            .iter()
            .position(|&(t, _)| t == tag)
            .expect("was present");
        alps.set_share(ids[pos], share).expect("live");
        println!("  {:<8} -> {share}", users[tag as usize].0);
    }
    // Stop cy's process by removing its entitlement effectively: here we
    // just let it keep its old share id but the departed user would have
    // its processes removed by the supervisor; for the demo, terminate it.
    let cy_pos = flat.iter().position(|&(t, _)| t == 2).expect("cy");
    sim.terminate(pids[cy_pos]);

    let snap: Vec<f64> = pids
        .iter()
        .map(|&p| sim.proc(p).unwrap().cputime().as_secs_f64())
        .collect();
    sim.run_until(Nanos::from_secs(60));
    println!("\nnext 30s (cy gone):");
    let totals: Vec<f64> = pids
        .iter()
        .zip(&snap)
        .map(|(&p, &s)| sim.proc(p).unwrap().cputime().as_secs_f64() - s)
        .collect();
    let total: f64 = totals.iter().sum();
    for ((&(name, _, _), c), i) in users.iter().zip(&totals).zip(0..) {
        if i == cy_pos {
            continue;
        }
        println!("  {name:<8} {c:>6.2}s = {:>5.1}%", 100.0 * c / total);
    }
    println!("  (targets: eng/ana 33.3, eng/bo 33.3, res 16.7/16.7 — cy's");
    println!("   entitlement returned to engineering, not to research)");
}
