//! Watching the engine think: the `--trace` event stream.
//!
//! Every backend drives the same generic engine (`alps_core::engine`),
//! and the engine narrates everything it does through an `EventSink`.
//! This example attaches the human-readable `TraceSink` to a real-Linux
//! supervisor over two spinner children with shares 1:3 — exactly what
//! `alps run --trace 1:'...' 3:'...'` prints. Expect output like:
//!
//! ```text
//! [    0.020134] quantum #1: 2 due
//!                measure 4711: cpu 0.000 ms
//!                measure 4712: cpu 0.000 ms
//!                signal  4711: CONT
//!                signal  4712: CONT
//! [    0.040191] quantum #2: 2 due
//!                measure 4711: cpu 19.724 ms
//!                ...
//! [    0.080611] ---- cycle 0 complete ----
//! ```
//!
//! `quantum #N: D due` opens each invocation (D members to measure —
//! fewer than the full set once §3.2 lazy measurement kicks in);
//! `measure`/`signal` lines show the per-member reads and
//! `SIGSTOP`/`SIGCONT` deliveries; `---- cycle N complete ----` marks
//! each S·Q boundary; a late timer prints `overrun: X ms since last
//! quantum` (§4.2) and an exited child prints `reaped <pid>`.
//!
//! Run with: `cargo run --release --example trace_events`

use std::time::Duration;

use alps::{AlpsConfig, Nanos, SpinnerPool, TraceSink};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pool = SpinnerPool::spawn(2)?;
    let pids = pool.pids();

    let cfg = AlpsConfig::new(Nanos::from_millis(20));
    let mut sup = alps::Supervisor::new(cfg);
    sup.add_process(pids[0], 1)?;
    sup.add_process(pids[1], 3)?;

    let mut sink = TraceSink::new(std::io::stderr());
    let end = std::time::Instant::now() + Duration::from_secs(2);
    while std::time::Instant::now() < end {
        sup.run_quantum_with(&mut sink)?;
    }
    sup.release_all();

    let s = sup.stats();
    eprintln!(
        "done: {} quanta, {} measurements, {} signals, {} cycles, {} overruns",
        s.quanta, s.measurements, s.signals, s.cycles, s.overruns
    );
    Ok(())
}
