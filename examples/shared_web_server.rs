//! The §5 shared-web-server scenario on the simulator: three users'
//! bulletin-board sites on one machine, first under the kernel scheduler
//! alone, then isolated by ALPS with per-user shares {1, 2, 3}.
//!
//! Run with: `cargo run --release --example shared_web_server`

use alps::Nanos;
use alps_sim::experiments::webserver::{run_webserver, WebParams};

fn main() {
    let params = WebParams {
        duration: Nanos::from_secs(40),
        ..WebParams::default()
    };
    println!(
        "three sites x {} workers, {:.0} ms CPU + {:.0} ms DB wait per request",
        params.workers_per_site,
        params.cpu_per_request.as_millis_f64(),
        params.db_wait.as_millis_f64()
    );
    println!(
        "measuring {} s of throughput per configuration...\n",
        params.duration.as_secs_f64()
    );

    let r = run_webserver(&params);

    println!("{:<26} {:>8} {:>8} {:>8}", "", "site A", "site B", "site C");
    println!(
        "{:<26} {:>8.1} {:>8.1} {:>8.1}   (req/s)",
        "kernel scheduler alone", r.baseline_rps[0], r.baseline_rps[1], r.baseline_rps[2]
    );
    println!(
        "{:<26} {:>8.1} {:>8.1} {:>8.1}   (req/s)",
        "ALPS, shares {1,2,3}", r.alps_rps[0], r.alps_rps[1], r.alps_rps[2]
    );
    println!(
        "\nwith ALPS, the sites receive {:.0}%/{:.0}%/{:.0}% of served requests",
        100.0 * r.alps_fractions[0],
        100.0 * r.alps_fractions[1],
        100.0 * r.alps_fractions[2]
    );
    println!("ALPS overhead: {:.2}% of one CPU", r.overhead_pct);
    println!("\npaper (real Apache/PHP/MySQL testbed): {{29,30,40}} -> {{18,35,53}} req/s");
}
