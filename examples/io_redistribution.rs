//! Figure 6 on real Linux: one of three children alternates CPU bursts
//! with sleeps; while it sleeps, ALPS redistributes its entitlement to the
//! other two in proportion to their shares.
//!
//! Run with: `cargo run --release --example io_redistribution`

use std::process::{Command, Stdio};
use std::time::Duration;

use alps::{AlpsConfig, Nanos, Supervisor};

fn cpu_of(pid: i32) -> Nanos {
    alps::os::read_stat(pid, alps::os::proc::ns_per_tick())
        .map(|s| s.cpu_time)
        .unwrap_or(Nanos::ZERO)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A: spinner (1 share); B: bursts ~80ms CPU then sleeps 240ms
    // (2 shares); C: spinner (3 shares) — the paper's §3.3 workload.
    let spin = "while :; do :; done";
    let burst = "while :; do i=0; while [ $i -lt 200000 ]; do i=$((i+1)); done; sleep 0.24; done";
    let mut children = Vec::new();
    for script in [spin, burst, spin] {
        children.push(
            Command::new("/bin/sh")
                .arg("-c")
                .arg(script)
                .stdin(Stdio::null())
                .stdout(Stdio::null())
                .spawn()?,
        );
    }
    let pids: Vec<i32> = children.iter().map(|c| c.id() as i32).collect();

    let cfg = AlpsConfig::new(Nanos::from_millis(10)).with_cycle_log(true);
    let mut sup = Supervisor::new(cfg);
    for (&pid, share) in pids.iter().zip([1u64, 2, 3]) {
        sup.add_process(pid, share)?;
    }

    println!("A=1 share (spin), B=2 shares (80ms bursts + 240ms sleeps), C=3 shares (spin)");
    println!("running 8s at a 10ms quantum...\n");
    let before: Vec<Nanos> = pids.iter().map(|&p| cpu_of(p)).collect();
    sup.run_for(Duration::from_secs(8))?;
    sup.release_all();
    let after: Vec<Nanos> = pids.iter().map(|&p| cpu_of(p)).collect();

    let consumed: Vec<f64> = before
        .iter()
        .zip(&after)
        .map(|(b, a)| a.saturating_sub(*b).as_secs_f64())
        .collect();
    let total: f64 = consumed.iter().sum();
    for ((label, share), c) in ["A", "B", "C"].iter().zip([1, 2, 3]).zip(&consumed) {
        println!(
            "  {label} ({share} share{}): {c:5.2}s CPU = {:5.1}% of group",
            if share == 1 { "" } else { "s" },
            100.0 * c / total
        );
    }
    println!("\nB runs below its 33% entitlement (it keeps sleeping); ALPS hands");
    println!("its unused time to A and C in their 1:3 ratio instead of wasting it.");
    println!(
        "A:C achieved ratio = 1:{:.2} (target 1:3)",
        consumed[2] / consumed[0].max(1e-9)
    );

    // Show the per-cycle picture briefly.
    let cycles = sup.cycles();
    if cycles.len() > 12 {
        println!("\nlast cycles (consumption ms per process):");
        for rec in cycles.iter().rev().take(8).rev() {
            let parts: Vec<String> = rec
                .entries
                .iter()
                .map(|e| format!("{:5.1}", e.consumed.as_millis_f64()))
                .collect();
            println!("  cycle {:>4}: [{}]", rec.index, parts.join(" "));
        }
    }

    for child in &mut children {
        let _ = alps::os::signal::sigcont(child.id() as i32);
        let _ = child.kill();
        let _ = child.wait();
    }
    Ok(())
}
