//! The paper's introductory scientific-computing scenario, on the
//! simulator: a multi-process application whose workers each compute over
//! a region of space, with CPU time apportioned to the *size* of each
//! worker's region (adaptive mesh refinement).
//!
//! The mesh refines twice during the run; the application updates its
//! workers' shares accordingly and ALPS re-apportions the CPU, something a
//! fixed-priority scheme cannot express.
//!
//! Run with: `cargo run --release --example scientific_mesh`

use alps::{AlpsConfig, CostModel, Nanos};
use kernsim::{ComputeBound, Sim, SimConfig};

fn main() {
    let mut sim = Sim::new(SimConfig::default());

    // Four workers, one per mesh region; initial cell counts.
    let regions = ["north", "south", "east", "west"];
    let mut cells: [u64; 4] = [100, 100, 100, 100];
    let pids: Vec<_> = regions
        .iter()
        .map(|r| sim.spawn(format!("worker-{r}"), Box::new(ComputeBound)))
        .collect();

    let cfg = AlpsConfig::new(Nanos::from_millis(10)).with_cycle_log(true);
    let procs: Vec<_> = pids.iter().copied().zip(cells.iter().copied()).collect();
    let alps = alps::spawn_alps(&mut sim, "alps", cfg, CostModel::paper(), &procs);
    let ids = alps.proc_ids();

    let report = |sim: &Sim, label: &str, base: &[Nanos]| {
        println!("\n{label}");
        let total: f64 = pids
            .iter()
            .zip(base)
            .map(|(&p, &b)| (sim.proc(p).unwrap().cputime() - b).as_secs_f64())
            .sum();
        for ((r, &p), &b) in regions.iter().zip(&pids).zip(base) {
            let c = (sim.proc(p).unwrap().cputime() - b).as_secs_f64();
            println!(
                "  {r:<6} {c:>6.2}s CPU ({:>5.1}% of phase)",
                100.0 * c / total
            );
        }
    };

    // Phase 1: uniform mesh.
    let snap1: Vec<Nanos> = pids
        .iter()
        .map(|&p| sim.proc(p).unwrap().cputime())
        .collect();
    sim.run_until(Nanos::from_secs(10));
    report(&sim, "phase 1 (uniform mesh, 100 cells each):", &snap1);

    // Phase 2: the north region refines 4x; shares follow cell counts.
    cells[0] = 400;
    println!("\nrefining north region to {} cells...", cells[0]);
    alps.set_share(ids[0], cells[0]).expect("live process");
    let snap2: Vec<Nanos> = pids
        .iter()
        .map(|&p| sim.proc(p).unwrap().cputime())
        .collect();
    sim.run_until(Nanos::from_secs(25));
    report(&sim, "phase 2 (north 400 cells => 4/7 of the CPU):", &snap2);

    // Phase 3: east coarsens away almost entirely.
    cells[2] = 10;
    println!("\ncoarsening east region to {} cells...", cells[2]);
    alps.set_share(ids[2], cells[2]).expect("live process");
    let snap3: Vec<Nanos> = pids
        .iter()
        .map(|&p| sim.proc(p).unwrap().cputime())
        .collect();
    sim.run_until(Nanos::from_secs(40));
    report(&sim, "phase 3 (east nearly idle):", &snap3);

    let want: Vec<f64> = cells
        .iter()
        .map(|&c| 100.0 * c as f64 / cells.iter().sum::<u64>() as f64)
        .collect();
    println!("\nphase-3 targets: {want:?}");
    println!("ALPS overhead: {:.3}% of the CPU", {
        100.0 * sim.proc(alps.pid).unwrap().cputime().as_f64() / sim.now().as_f64()
    });
}
