//! Integration tests of the beyond-the-paper extensions, end-to-end.

use alps::{Nanos, ShareTree};
use alps_sim::experiments::batch::{run_batch, BatchParams};
use alps_sim::experiments::smp::{feasible_fractions, run_smp, SmpParams};
use workloads::{parse_trace, OnEnd, TraceReplay};

#[test]
fn smp_enforces_exact_ratios_by_throttling() {
    let r = run_smp(&SmpParams {
        cpus: 2,
        shares: vec![1, 2, 3, 4],
        quantum: Nanos::from_millis(10),
        duration: Nanos::from_secs(30),
        seed: 1,
    });
    // Feasible distribution: proportional on 2 CPUs, high fairness.
    for (i, (&got, want)) in r.achieved_frac.iter().zip([0.1, 0.2, 0.3, 0.4]).enumerate() {
        assert!((got - want).abs() < 0.03, "proc {i}: {got:.3} vs {want}");
    }
    assert!(r.jain > 0.99, "jain {:.4}", r.jain);
}

#[test]
fn water_filling_sums_to_at_most_one() {
    for (shares, cpus) in [
        (vec![1u64, 9], 2usize),
        (vec![5, 5, 5], 4),
        (vec![1, 1, 14], 4),
        (vec![7], 3),
    ] {
        let f = feasible_fractions(&shares, cpus);
        let sum: f64 = f.iter().sum();
        assert!(sum <= 1.0 + 1e-9, "{shares:?} on {cpus}: sum {sum}");
        for &x in &f {
            assert!(x <= 1.0 / cpus as f64 + 1e-9);
        }
    }
}

#[test]
fn batch_co_completion_beats_kernel_fairness() {
    let r = run_batch(&BatchParams {
        work_ms: vec![1600, 800, 400, 200],
        quantum: Nanos::from_millis(10),
        seed: 2,
    });
    assert!(r.alps.spread_ms < r.kernel.spread_ms * 0.5);
}

#[test]
fn share_tree_end_to_end_with_trace_replay() {
    use alps::{AlpsConfig, CostModel};
    use kernsim::{Sim, SimConfig};

    // A two-department tree over trace-replay workloads: the full
    // extension stack in one scenario.
    let mut tree = ShareTree::new();
    let heavy = tree.add_group(None, 3);
    let light = tree.add_group(None, 1);
    let mut sim = Sim::new(SimConfig::default());
    let trace = parse_trace("5000 100\n2000 50\n").expect("trace");
    let mut pids = Vec::new();
    for (i, group) in [(0u64, heavy), (1, heavy), (2, light)]
        .iter()
        .map(|&(t, g)| (t, g))
    {
        let pid = sim.spawn(
            format!("t{i}"),
            Box::new(TraceReplay::new(trace.clone(), OnEnd::Loop)),
        );
        pids.push(pid);
        tree.add_leaf(Some(group), 1, i);
    }
    let flat = tree.flatten();
    let procs: Vec<_> = flat
        .iter()
        .map(|&(tag, share)| (pids[tag as usize], share))
        .collect();
    alps::spawn_alps(
        &mut sim,
        "alps",
        AlpsConfig::new(Nanos::from_millis(10)),
        CostModel::paper(),
        &procs,
    );
    sim.run_until(Nanos::from_secs(30));
    let total: f64 = pids
        .iter()
        .map(|&p| sim.proc(p).unwrap().cputime().as_secs_f64())
        .sum();
    // heavy dept: 3/4 split over two leaves = 3/8 each; light leaf: 1/4.
    let fr: Vec<f64> = pids
        .iter()
        .map(|&p| sim.proc(p).unwrap().cputime().as_secs_f64() / total)
        .collect();
    assert!((fr[0] - 0.375).abs() < 0.03, "{fr:?}");
    assert!((fr[1] - 0.375).abs() < 0.03, "{fr:?}");
    assert!((fr[2] - 0.25).abs() < 0.03, "{fr:?}");
}

#[test]
fn scheduler_checkpoint_survives_a_backend_swap() {
    use alps::{AlpsConfig, AlpsScheduler, Observation};

    // Serialize a scheduler mid-flight and keep driving the restored copy
    // with a different backend clock base — proportions must continue.
    let mut sched = AlpsScheduler::new(AlpsConfig::new(Nanos::from_millis(10)));
    let a = sched.add_process(1, Nanos::ZERO);
    let b = sched.add_process(3, Nanos::ZERO);
    let mut cpu = [0u64; 2];
    for k in 0..50u64 {
        let due = sched.begin_quantum();
        // Greedy backend: split the quantum among eligible procs evenly.
        let eligible: Vec<_> = [a, b]
            .into_iter()
            .filter(|&id| sched.is_eligible(id) == Some(true))
            .collect();
        for id in &eligible {
            let i = if *id == a { 0 } else { 1 };
            cpu[i] += 10_000_000 / eligible.len() as u64;
        }
        let obs: Vec<_> = due
            .iter()
            .map(|&id| {
                let i = if id == a { 0 } else { 1 };
                (
                    id,
                    Observation {
                        total_cpu: Nanos(cpu[i]),
                        blocked: false,
                    },
                )
            })
            .collect();
        sched.complete_quantum(&obs, Nanos(10_000_000 * k));
    }
    let json = serde_json::to_string(&sched).expect("serialize");
    let mut restored: AlpsScheduler = serde_json::from_str(&json).expect("restore");
    for k in 50..400u64 {
        let due = restored.begin_quantum();
        let eligible: Vec<_> = [a, b]
            .into_iter()
            .filter(|&id| restored.is_eligible(id) == Some(true))
            .collect();
        for id in &eligible {
            let i = if *id == a { 0 } else { 1 };
            cpu[i] += 10_000_000 / eligible.len() as u64;
        }
        let obs: Vec<_> = due
            .iter()
            .map(|&id| {
                let i = if id == a { 0 } else { 1 };
                (
                    id,
                    Observation {
                        total_cpu: Nanos(cpu[i]),
                        blocked: false,
                    },
                )
            })
            .collect();
        restored.complete_quantum(&obs, Nanos(10_000_000 * k));
    }
    let ratio = cpu[1] as f64 / cpu[0] as f64;
    assert!(
        (ratio - 3.0).abs() < 0.3,
        "long-run 1:3 across restore: {ratio:.2}"
    );
}
