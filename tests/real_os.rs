//! Integration tests of the real-Linux backend against the same claims the
//! simulator reproduces — run on live processes, so tolerances are wide.

use std::time::Duration;

use alps::{AlpsConfig, Membership, Nanos, PrincipalSupervisor, SpinnerPool, Supervisor};

fn cpu_of(pid: i32) -> Nanos {
    alps::os::read_stat(pid, alps::os::proc::ns_per_tick())
        .map(|s| s.cpu_time)
        .unwrap_or(Nanos::ZERO)
}

#[test]
fn real_processes_follow_a_one_two_four_split() {
    let pool = SpinnerPool::spawn(3).expect("spawn spinners");
    let pids = pool.pids();
    let shares = [1u64, 2, 4];
    let mut sup = Supervisor::new(AlpsConfig::new(Nanos::from_millis(20)));
    let before: Vec<Nanos> = pids.iter().map(|&p| cpu_of(p)).collect();
    for (&pid, &share) in pids.iter().zip(&shares) {
        sup.add_process(pid, share).unwrap();
    }
    sup.run_for(Duration::from_secs(4)).unwrap();
    sup.release_all();
    let consumed: Vec<f64> = pids
        .iter()
        .zip(&before)
        .map(|(&p, &b)| cpu_of(p).saturating_sub(b).as_secs_f64())
        .collect();
    let total: f64 = consumed.iter().sum();
    assert!(total > 1.0, "workload consumed {total:.2}s");
    for (c, &s) in consumed.iter().zip(&shares) {
        let got = c / total;
        let want = s as f64 / 7.0;
        assert!(
            (got - want).abs() < 0.12,
            "share {s}: got {:.2} of CPU, want {:.2} (consumed {consumed:?})",
            got,
            want
        );
    }
}

#[test]
fn real_supervisor_survives_child_churn() {
    let pool = SpinnerPool::spawn(3).expect("spawn spinners");
    let pids = pool.pids();
    let mut sup = Supervisor::new(AlpsConfig::new(Nanos::from_millis(10)));
    for &pid in &pids {
        sup.add_process(pid, 1).unwrap();
    }
    sup.run_for(Duration::from_millis(500)).unwrap();
    // Kill one child mid-flight; the supervisor must reap and continue.
    alps::os::signal::sigcont(pids[1]).unwrap();
    alps::os::signal::sigkill(pids[1]).unwrap();
    sup.run_for(Duration::from_secs(1)).unwrap();
    assert_eq!(sup.processes().len(), 2);
    // Remaining children still make progress.
    let c0 = cpu_of(pids[0]);
    sup.run_for(Duration::from_secs(1)).unwrap();
    assert!(cpu_of(pids[0]) > c0);
    sup.release_all();
}

#[test]
fn real_principals_split_by_group_share() {
    let pool_a = SpinnerPool::spawn(2).expect("spawn");
    let pool_b = SpinnerPool::spawn(1).expect("spawn");
    let mut sup = PrincipalSupervisor::new(
        AlpsConfig::new(Nanos::from_millis(20)),
        Duration::from_millis(500),
    );
    sup.add_principal(1, Membership::Pids(pool_a.pids()));
    sup.add_principal(3, Membership::Pids(pool_b.pids()));
    let before_a: f64 = pool_a.pids().iter().map(|&p| cpu_of(p).as_secs_f64()).sum();
    let before_b: f64 = pool_b.pids().iter().map(|&p| cpu_of(p).as_secs_f64()).sum();
    sup.run_for(Duration::from_secs(4)).unwrap();
    sup.release_all();
    let ca: f64 = pool_a
        .pids()
        .iter()
        .map(|&p| cpu_of(p).as_secs_f64())
        .sum::<f64>()
        - before_a;
    let cb: f64 = pool_b
        .pids()
        .iter()
        .map(|&p| cpu_of(p).as_secs_f64())
        .sum::<f64>()
        - before_b;
    assert!(ca > 0.0 && cb > 0.0);
    // Group B (one process, 3 shares) gets ~3x group A (two processes, 1
    // share) — the principal abstraction decouples shares from process
    // counts.
    let ratio = cb / ca;
    assert!(
        (1.7..=4.6).contains(&ratio),
        "want ~3.0 between groups, got {cb:.2}/{ca:.2} = {ratio:.2}"
    );
}

#[test]
fn live_table1_costs_are_commensurate_with_the_model() {
    // The paper's costs are from a 2.2 GHz P4 in 2006; this machine will
    // differ, but every operation should be in the microsecond regime the
    // design depends on (not milliseconds).
    let p = alps::os::probe_table1(300).unwrap();
    assert!(p.timer_event_us < 500.0, "timer {p:?}");
    assert!(
        p.measure_base_us + p.measure_per_proc_us < 500.0,
        "measure {p:?}"
    );
    assert!(p.signal_us < 100.0, "signal {p:?}");
}

#[test]
fn real_io_bound_child_is_detected_blocked_and_not_starved() {
    // A Figure-6-shaped check on the live kernel: a burst+sleep child under
    // ALPS next to two spinners. The sleeper must still make progress, and
    // the two spinners must keep their 1:3 ratio of what remains.
    let mut pool = SpinnerPool::spawn(2).expect("spinners");
    let sleeper = pool
        .spawn_burst_sleeper(150_000, 0.2)
        .expect("burst sleeper");
    let pids = pool.pids();
    let mut sup = Supervisor::new(AlpsConfig::new(Nanos::from_millis(10)));
    let before: Vec<Nanos> = pids.iter().map(|&p| cpu_of(p)).collect();
    sup.add_process(pids[0], 1).unwrap(); // spinner A
    sup.add_process(sleeper, 2).unwrap(); // I/O-ish B
    sup.add_process(pids[1], 3).unwrap(); // spinner C
    sup.run_for(Duration::from_secs(5)).unwrap();
    sup.release_all();
    let consumed: Vec<f64> = pids
        .iter()
        .zip(&before)
        .map(|(&p, &b)| cpu_of(p).saturating_sub(b).as_secs_f64())
        .collect();
    // pids = [spinner A, spinner C, sleeper B] in spawn order:
    // SpinnerPool::spawn(2) created the two spinners first.
    let (a, c, b) = (consumed[0], consumed[1], consumed[2]);
    assert!(b > 0.1, "sleeper starved: {b:.2}s");
    assert!(
        b < 5.0 * 2.0 / 6.0,
        "sleeper used {b:.2}s, must be under its share"
    );
    let ratio = c / a.max(1e-9);
    assert!(
        (1.8..=4.8).contains(&ratio),
        "A:C should stay ~1:3, got 1:{ratio:.2} ({a:.2}s vs {c:.2}s)"
    );
}
