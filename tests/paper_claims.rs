//! Cross-crate integration tests asserting the paper's headline claims
//! end-to-end on the simulator (scaled down for test time):
//!
//! * accuracy under 5% error for non-skewed workloads (§3.1 / Figure 4);
//! * overhead under 1% for the evaluation workloads (§3.2 / Figure 5);
//! * the §2.3 optimization reduces overhead by a meaningful factor;
//! * blocked processes' CPU is redistributed proportionally (§3.3);
//! * concurrent ALPSs stay accurate within their groups (§4.1);
//! * control breaks down past the §4.2 threshold, and the threshold moves
//!   out with larger quanta;
//! * the web server's throughput follows the share distribution (§5).

use alps::Nanos;
use alps_sim::experiments::io::{run_io, IoParams};
use alps_sim::experiments::multi::{run_multi, MultiParams};
use alps_sim::experiments::scalability::run_scalability_point;
use alps_sim::experiments::webserver::{run_webserver, WebParams};
use alps_sim::experiments::workload::{run_ablation, run_workload, WorkloadParams};
use workloads::ShareModel;

fn quick(model: ShareModel, n: usize, q_ms: u64) -> WorkloadParams {
    let mut p = WorkloadParams::new(model, n, Nanos::from_millis(q_ms));
    p.target_cycles = 50;
    p
}

#[test]
fn accuracy_is_paper_grade_for_linear_and_equal() {
    for model in [ShareModel::Linear, ShareModel::Equal] {
        for n in [5usize, 10] {
            for q in [10u64, 40] {
                let r = run_workload(&quick(model, n, q));
                assert!(
                    r.mean_rms_error_pct < 8.0,
                    "{} Q={q}ms: error {:.2}%",
                    r.workload,
                    r.mean_rms_error_pct
                );
            }
        }
    }
}

#[test]
fn overhead_is_under_one_percent_for_table2_workloads() {
    for model in ShareModel::ALL {
        for n in [5usize, 20] {
            let r = run_workload(&quick(model, n, 10));
            assert!(
                r.overhead_pct < 1.0,
                "{}: overhead {:.3}%",
                r.workload,
                r.overhead_pct
            );
        }
    }
}

#[test]
fn skewed_has_the_highest_overhead_rank_for_equal() {
    // Paper §3.2: equal-share workloads give ALPS the most work because
    // few processes become ineligible early in a cycle.
    let skewed = run_workload(&quick(ShareModel::Skewed, 20, 10));
    let equal = run_workload(&quick(ShareModel::Equal, 20, 10));
    assert!(
        equal.overhead_pct > skewed.overhead_pct,
        "equal {:.3}% should exceed skewed {:.3}%",
        equal.overhead_pct,
        skewed.overhead_pct
    );
}

#[test]
fn optimization_factor_in_paper_range() {
    let mut p = quick(ShareModel::Equal, 10, 10);
    p.target_cycles = 30;
    let row = run_ablation(&p);
    // Paper: 1.8x – 5.9x across its workloads.
    assert!(
        row.factor > 1.5 && row.factor < 30.0,
        "factor {:.2}",
        row.factor
    );
}

#[test]
fn io_redistribution_matches_figure6() {
    let p = IoParams {
        io_start_cycle: 80,
        end_cycle: 160,
        ..IoParams::default()
    };
    let r = run_io(&p);
    let (a, b, c) = r.steady_split;
    assert!((a - 16.7).abs() < 3.0 && (b - 33.3).abs() < 3.0 && (c - 50.0).abs() < 3.0);
    let (ba, bc) = r.blocked_split;
    assert!((ba - 25.0).abs() < 6.0, "A while B blocked: {ba:.1}%");
    assert!((bc - 75.0).abs() < 6.0, "C while B blocked: {bc:.1}%");
}

#[test]
fn concurrent_alps_instances_stay_accurate() {
    let r = run_multi(&MultiParams::default());
    assert!(
        r.mean_rel_err_pct < 4.0,
        "mean error {:.2}% (paper: 0.93%)",
        r.mean_rel_err_pct
    );
    for f in r.phase3_group_fractions {
        assert!((f - 1.0 / 3.0).abs() < 0.1, "group fraction {f:.2}");
    }
}

#[test]
fn breakdown_threshold_moves_out_with_larger_quanta() {
    // Below threshold at N=20 for 10ms; above it at N=90.
    let fine_small = run_scalability_point(20, Nanos::from_millis(10), Nanos::from_secs(40), 1);
    assert!(fine_small.quanta_serviced_frac > 0.95);
    let broken = run_scalability_point(90, Nanos::from_millis(10), Nanos::from_secs(60), 1);
    assert!(
        broken.quanta_serviced_frac < 0.9,
        "N=90 @10ms should be past breakdown: {}",
        broken.quanta_serviced_frac
    );
    // The same N=90 at a 40ms quantum keeps much better control (paper:
    // observed threshold 90 at 40ms vs 40 at 10ms).
    let coarse = run_scalability_point(90, Nanos::from_millis(40), Nanos::from_secs(60), 1);
    assert!(
        coarse.quanta_serviced_frac > broken.quanta_serviced_frac + 0.2,
        "40ms ({}) should hold control far better than 10ms ({})",
        coarse.quanta_serviced_frac,
        broken.quanta_serviced_frac
    );
}

#[test]
fn webserver_throughput_follows_shares() {
    let p = WebParams {
        workers_per_site: 12,
        duration: Nanos::from_secs(20),
        warmup: Nanos::from_secs(3),
        ..WebParams::default()
    };
    let r = run_webserver(&p);
    // Kernel alone: roughly even.
    let btotal: f64 = r.baseline_rps.iter().sum();
    for rps in r.baseline_rps {
        assert!((rps / btotal - 1.0 / 3.0).abs() < 0.08);
    }
    // Under ALPS: ordered by share and near 1:2:3.
    assert!(r.alps_rps[0] < r.alps_rps[1] && r.alps_rps[1] < r.alps_rps[2]);
    assert!(
        (r.alps_fractions[2] - 0.5).abs() < 0.07,
        "{:?}",
        r.alps_fractions
    );
}
